//! Crash-consistent campaign journal: an append-only, CRC-framed JSONL
//! write-ahead log of per-design-point results.
//!
//! Long, fault-injected campaigns (see [`super::resilience`]) can die at
//! design point 900/1000 — from an OOM kill, an operator `kill -9`, a
//! machine reboot — and the paper's Rule 3 (results must be repeatable
//! and complete) is violated if that loses everything. The journal makes
//! campaign progress durable:
//!
//! * every finished design point is appended as one **CRC-framed JSONL
//!   record** (`XXXXXXXX {json}\n`, where the 8-hex prefix is the IEEE
//!   CRC32 of the JSON payload bytes), so torn or bit-rotted frames are
//!   detectable;
//! * records are **content-addressed**: the key is a stable 64-bit hash
//!   of (design point levels, machine/fault config fingerprint, seed,
//!   code version), so a record is only ever reused for the exact
//!   configuration that produced it;
//! * recovery **tolerates torn trailing records** (the tail written
//!   during the crash is truncated and execution continues), while a
//!   corrupt frame in the *middle* of the journal is rejected with a
//!   typed [`JournalError::CorruptFrame`] — silent data loss is never an
//!   option;
//! * a header frame pins the journal's format version, code version,
//!   config fingerprint, seed and design shape; resuming against a stale
//!   journal (older code, different machine config, different seed) is
//!   **refused** with [`JournalError::Stale`] instead of silently mixing
//!   incompatible results;
//! * floating-point payloads are stored as 16-hex IEEE-754 bit patterns,
//!   so a resumed campaign is **bit-identical** to an uninterrupted one —
//!   including NaN placeholders for dropped samples.
//!
//! [`super::resilience::run_campaign_resilient_journaled`] drives a
//! resilient campaign through this log and skips completed points on
//! restart; [`crate::parallel::shard`] builds per-process shard journals
//! and a persistent quarantine on the same framing.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use scibench_trace::json::{parse as parse_json, JsonValue};

use super::design::{Design, RunPoint};
use super::measurement::MeasurementOutcome;
use super::resilience::{PointFate, ResilientRun};

/// Journal format version; bumped whenever the frame layout changes.
/// A mismatch refuses the journal (it is part of the header check).
pub const JOURNAL_FORMAT: u32 = 1;

/// Errors of the campaign journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O operation on the journal file failed.
    Io {
        /// The journal path.
        path: String,
        /// What was being attempted ("open", "read", "append", ...).
        op: &'static str,
        /// The underlying error, rendered.
        error: String,
    },
    /// A frame before the journal tail failed its CRC or did not parse.
    /// (A *trailing* bad frame is a torn write and is truncated instead.)
    CorruptFrame {
        /// 1-based line number of the bad frame.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal does not start with a header frame.
    MissingHeader,
    /// The journal was written by an incompatible configuration (older
    /// code version, different machine/fault config, seed or design).
    Stale {
        /// Which header field mismatched.
        field: &'static str,
        /// The value the resuming campaign expected.
        expected: String,
        /// The value found in the journal.
        found: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, op, error } => {
                write!(f, "journal {op} failed for {path}: {error}")
            }
            JournalError::CorruptFrame { line, reason } => {
                write!(f, "corrupt journal frame at line {line}: {reason}")
            }
            JournalError::MissingHeader => write!(f, "journal has no header frame"),
            JournalError::Stale {
                field,
                expected,
                found,
            } => write!(
                f,
                "stale journal refused: {field} mismatch (expected {expected}, found {found})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// A content-addressed journal key: a stable 64-bit hash of (design
/// point, config fingerprint, seed, code version).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JournalKey(pub u64);

impl fmt::Display for JournalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The identity a journal is bound to. All five fields must match for a
/// journal to be resumed; any mismatch is [`JournalError::Stale`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Frame-format version ([`JOURNAL_FORMAT`]).
    pub format: u32,
    /// Version of the code that wrote the journal (callers usually pass
    /// the crate version plus any schedule/statistics schema revision).
    pub code_version: String,
    /// Free-form fingerprint of the machine/fault configuration measured.
    pub config_fingerprint: String,
    /// The campaign seed.
    pub seed: u64,
    /// Hash of the design shape (factor names and levels).
    pub design_fingerprint: u64,
}

impl JournalMeta {
    /// Builds the metadata for `design` under `seed`.
    pub fn new(design: &Design, seed: u64, code_version: &str, config_fingerprint: &str) -> Self {
        Self {
            format: JOURNAL_FORMAT,
            code_version: code_version.to_owned(),
            config_fingerprint: config_fingerprint.to_owned(),
            seed,
            design_fingerprint: design_fingerprint(design),
        }
    }
}

/// Where a journal lives and what identity it is bound to (the
/// ergonomic bundle the journaled campaign runners take).
#[derive(Debug, Clone)]
pub struct JournalSpec<'a> {
    /// Path of the journal file (created on first use).
    pub path: &'a Path,
    /// Code version to bind into the header and every key.
    pub code_version: &'a str,
    /// Machine/fault configuration fingerprint to bind in.
    pub config_fingerprint: &'a str,
}

// ---------------------------------------------------------------------------
// Hashing and framing primitives.
// ---------------------------------------------------------------------------

/// IEEE CRC32 (reflected, polynomial 0xEDB88320) — the frame checksum.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable hash of the design shape: factor names and all levels, each
/// length-prefixed so concatenation ambiguities cannot collide.
pub fn design_fingerprint(design: &Design) -> u64 {
    let mut h = FNV_OFFSET;
    for factor in design.factors() {
        h = fnv1a(h, &(factor.name.len() as u64).to_le_bytes());
        h = fnv1a(h, factor.name.as_bytes());
        for level in &factor.levels {
            h = fnv1a(h, &(level.len() as u64).to_le_bytes());
            h = fnv1a(h, level.as_bytes());
        }
    }
    splitmix64(h)
}

/// Derives the content-addressed key of one design point under `meta`:
/// a pure function of (levels, config fingerprint, seed, code version),
/// independent of the design index, execution order or thread count.
pub fn point_key(meta: &JournalMeta, point: &RunPoint) -> JournalKey {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, meta.code_version.as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, meta.config_fingerprint.as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, &meta.seed.to_le_bytes());
    for level in &point.levels {
        h = fnv1a(h, &(level.len() as u64).to_le_bytes());
        h = fnv1a(h, level.as_bytes());
    }
    JournalKey(splitmix64(h))
}

fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Wraps a JSON payload into one CRC-framed line (with trailing newline).
pub(crate) fn frame_line(json: &str) -> String {
    format!("{:08x} {json}\n", crc32(json.as_bytes()))
}

/// Checks and strips the CRC frame of one line, returning the payload.
fn unframe(line: &str) -> Result<&str, String> {
    if line.len() < 10 || line.as_bytes().get(8) != Some(&b' ') {
        return Err("frame shorter than CRC prefix".into());
    }
    let crc = u32::from_str_radix(&line[..8], 16).map_err(|_| "bad CRC hex".to_string())?;
    let payload = &line[9..];
    let actual = crc32(payload.as_bytes());
    if crc != actual {
        return Err(format!(
            "CRC mismatch (frame {crc:08x}, payload {actual:08x})"
        ));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// JSON accessors (over the in-repo parser from scibench-trace).
// ---------------------------------------------------------------------------

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    let n = v
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))?;
    if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
        return Err(format!("\"{key}\" is not a small non-negative integer"));
    }
    Ok(n as usize)
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean \"{key}\"")),
    }
}

fn get_hex64(v: &JsonValue, key: &str) -> Result<u64, String> {
    let s = get_str(v, key)?;
    u64::from_str_radix(s, 16).map_err(|_| format!("\"{key}\" is not 16-hex"))
}

fn get_strings(v: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    let arr = v
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing or non-array \"{key}\""))?;
    arr.iter()
        .map(|e| {
            e.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("non-string element in \"{key}\""))
        })
        .collect()
}

fn get_f64_bits_vec(v: &JsonValue, key: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing or non-array \"{key}\""))?;
    arr.iter()
        .map(|e| {
            let s = e
                .as_str()
                .ok_or_else(|| format!("non-string bit pattern in \"{key}\""))?;
            u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("bad bit pattern in \"{key}\""))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------------

/// One journaled design-point result (the durable form of a
/// [`ResilientRun`], plus optional free-form notes used by coarser
/// consumers such as `all_figures` figure-level resume).
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Design (full-factorial) index of the point.
    pub index: usize,
    /// Content-addressed key of the point.
    pub key: JournalKey,
    /// The point's factor levels (for human inspection; the key is
    /// authoritative).
    pub levels: Vec<String>,
    /// What happened to the point.
    pub fate: PointFate,
    /// Panics contained while attempting the point.
    pub panics_contained: usize,
    /// The surviving outcome; `None` when the point was quarantined.
    pub outcome: Option<MeasurementOutcome>,
    /// Free-form annotations (e.g. progress lines to replay on resume).
    pub notes: Vec<String>,
    /// Canonical streaming-sketch record for the point, when the
    /// campaign ran in streaming mode (`scibench_stats::sketch`
    /// wire form — bit-exact, NaN-safe).
    pub sketch: Option<String>,
}

impl PointRecord {
    /// Builds the durable record of one executed run.
    pub fn from_run(index: usize, key: JournalKey, run: &ResilientRun) -> Self {
        Self {
            index,
            key,
            levels: run.point.levels.clone(),
            fate: run.fate.clone(),
            panics_contained: run.panics_contained,
            outcome: run.outcome.clone(),
            notes: Vec::new(),
            sketch: None,
        }
    }

    /// Reconstructs the in-memory run this record was made from.
    pub fn into_run(self) -> ResilientRun {
        ResilientRun {
            point: RunPoint {
                levels: self.levels,
            },
            outcome: self.outcome,
            fate: self.fate,
            panics_contained: self.panics_contained,
        }
    }

    /// Serializes the record body as canonical JSON (no CRC frame).
    pub fn to_json(&self) -> String {
        let fate = match &self.fate {
            PointFate::Completed {
                attempts,
                samples_dropped,
            } => format!(
                "{{\"kind\":\"completed\",\"attempts\":{attempts},\"dropped\":{samples_dropped}}}"
            ),
            PointFate::TimedOut {
                attempts,
                elapsed_ns,
            } => format!(
                "{{\"kind\":\"timed_out\",\"attempts\":{attempts},\"elapsed\":\"{}\"}}",
                f64_hex(*elapsed_ns)
            ),
            PointFate::Abandoned {
                attempts,
                last_error,
            } => format!(
                "{{\"kind\":\"abandoned\",\"attempts\":{attempts},\"error\":\"{}\"}}",
                esc(last_error)
            ),
        };
        let outcome = match &self.outcome {
            None => "null".to_owned(),
            Some(o) => {
                let bits = |xs: &[f64]| {
                    xs.iter()
                        .map(|x| format!("\"{}\"", f64_hex(*x)))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "{{\"name\":\"{}\",\"converged\":{},\"warmup\":[{}],\"samples\":[{}]}}",
                    esc(&o.name),
                    o.converged,
                    bits(&o.warmup_samples),
                    bits(&o.samples),
                )
            }
        };
        let levels = self
            .levels
            .iter()
            .map(|l| format!("\"{}\"", esc(l)))
            .collect::<Vec<_>>()
            .join(",");
        let notes = self
            .notes
            .iter()
            .map(|l| format!("\"{}\"", esc(l)))
            .collect::<Vec<_>>()
            .join(",");
        let sketch = match &self.sketch {
            None => String::new(),
            Some(s) => format!(",\"sketch\":\"{}\"", esc(s)),
        };
        format!(
            "{{\"kind\":\"point\",\"idx\":{},\"key\":\"{}\",\"levels\":[{levels}],\
             \"fate\":{fate},\"panics\":{},\"outcome\":{outcome},\"notes\":[{notes}]{sketch}}}",
            self.index, self.key, self.panics_contained,
        )
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let fate_v = v.get("fate").ok_or("missing \"fate\"")?;
        let attempts = get_usize(fate_v, "attempts")?;
        let fate = match get_str(fate_v, "kind")? {
            "completed" => PointFate::Completed {
                attempts,
                samples_dropped: get_usize(fate_v, "dropped")?,
            },
            "timed_out" => PointFate::TimedOut {
                attempts,
                elapsed_ns: f64::from_bits(get_hex64(fate_v, "elapsed")?),
            },
            "abandoned" => PointFate::Abandoned {
                attempts,
                last_error: get_str(fate_v, "error")?.to_owned(),
            },
            other => return Err(format!("unknown fate kind \"{other}\"")),
        };
        let outcome = match v.get("outcome") {
            Some(JsonValue::Null) | None => None,
            Some(o) => Some(MeasurementOutcome {
                name: get_str(o, "name")?.to_owned(),
                converged: get_bool(o, "converged")?,
                warmup_samples: get_f64_bits_vec(o, "warmup")?,
                samples: get_f64_bits_vec(o, "samples")?,
            }),
        };
        Ok(Self {
            index: get_usize(v, "idx")?,
            key: JournalKey(get_hex64(v, "key")?),
            levels: get_strings(v, "levels")?,
            fate,
            panics_contained: get_usize(v, "panics")?,
            outcome,
            notes: get_strings(v, "notes").unwrap_or_default(),
            sketch: match v.get("sketch") {
                Some(JsonValue::Null) | None => None,
                Some(_) => Some(get_str(v, "sketch")?.to_owned()),
            },
        })
    }
}

fn header_json(meta: &JournalMeta) -> String {
    format!(
        "{{\"kind\":\"header\",\"format\":{},\"code_version\":\"{}\",\"config\":\"{}\",\
         \"seed\":\"{:016x}\",\"design\":\"{:016x}\"}}",
        meta.format,
        esc(&meta.code_version),
        esc(&meta.config_fingerprint),
        meta.seed,
        meta.design_fingerprint,
    )
}

fn header_from_json(v: &JsonValue) -> Result<JournalMeta, String> {
    Ok(JournalMeta {
        format: get_usize(v, "format")? as u32,
        code_version: get_str(v, "code_version")?.to_owned(),
        config_fingerprint: get_str(v, "config")?.to_owned(),
        seed: get_hex64(v, "seed")?,
        design_fingerprint: get_hex64(v, "design")?,
    })
}

// ---------------------------------------------------------------------------
// Snapshot (the parsed journal) and the Journal handle.
// ---------------------------------------------------------------------------

/// The parsed state of a journal file.
#[derive(Debug, Clone, Default)]
pub struct JournalSnapshot {
    /// The header, if any frame was readable (`None` for an empty file).
    pub meta: Option<JournalMeta>,
    /// Completed point records, keyed content-addressed. Duplicate keys
    /// resolve last-write-wins.
    pub records: HashMap<JournalKey, PointRecord>,
    /// `begin` markers without a later matching `point` record — the
    /// points that were in flight when the writer died. (Duplicates are
    /// possible across respawns.)
    pub dangling_begins: Vec<(usize, JournalKey)>,
    /// Valid frames parsed.
    pub frames: usize,
    /// Byte length of the valid prefix (everything after it is torn).
    pub valid_len: u64,
    /// Whether a torn tail was dropped.
    pub torn: bool,
}

impl JournalSnapshot {
    /// Looks up the completed record for a key.
    pub fn record_for(&self, key: JournalKey) -> Option<&PointRecord> {
        self.records.get(&key)
    }
}

fn io_err(path: &Path, op: &'static str, error: impl fmt::Display) -> JournalError {
    JournalError::Io {
        path: path.display().to_string(),
        op,
        error: error.to_string(),
    }
}

/// An open, append-mode journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Parses a journal file. The file must exist; see
    /// [`Journal::load_or_empty`] for the tolerant variant.
    ///
    /// A bad frame at the very end of the file (a torn write from a
    /// crash) is dropped and reported via [`JournalSnapshot::torn`]; a
    /// bad frame anywhere else is [`JournalError::CorruptFrame`].
    pub fn load(path: &Path) -> Result<JournalSnapshot, JournalError> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, "read", e))?;
        Self::parse(&bytes)
    }

    /// [`Journal::load`], but a missing file is an empty snapshot.
    pub fn load_or_empty(path: &Path) -> Result<JournalSnapshot, JournalError> {
        if !path.exists() {
            return Ok(JournalSnapshot::default());
        }
        Self::load(path)
    }

    fn parse(bytes: &[u8]) -> Result<JournalSnapshot, JournalError> {
        let mut snap = JournalSnapshot::default();
        // Split into newline-terminated lines; an unterminated tail is a
        // torn write by definition (every append ends with '\n').
        let mut start = 0usize;
        let mut lines: Vec<(usize, &[u8])> = Vec::new(); // (offset, line w/o \n)
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push((start, &bytes[start..i]));
                start = i + 1;
            }
        }
        let unterminated_tail = start < bytes.len();

        for (lineno, (offset, raw)) in lines.iter().enumerate() {
            let last = lineno + 1 == lines.len() && !unterminated_tail;
            let parsed: Result<JsonValue, String> = std::str::from_utf8(raw)
                .map_err(|_| "invalid utf-8".to_string())
                .and_then(unframe)
                .and_then(|payload| parse_json(payload).map_err(|e| format!("bad JSON: {e}")));
            let value = match parsed {
                Ok(v) => v,
                Err(_) if last => {
                    // Torn trailing record: truncate-and-continue.
                    snap.torn = true;
                    snap.valid_len = *offset as u64;
                    return Ok(snap);
                }
                Err(reason) => {
                    return Err(JournalError::CorruptFrame {
                        line: lineno + 1,
                        reason,
                    });
                }
            };
            let classify: Result<(), String> = (|| {
                let kind = get_str(&value, "kind")?;
                match kind {
                    "header" => {
                        if lineno != 0 {
                            return Err("header frame not first".into());
                        }
                        snap.meta = Some(header_from_json(&value)?);
                    }
                    "begin" => {
                        let idx = get_usize(&value, "idx")?;
                        let key = JournalKey(get_hex64(&value, "key")?);
                        snap.dangling_begins.push((idx, key));
                    }
                    "point" => {
                        let rec = PointRecord::from_json(&value)?;
                        snap.dangling_begins.retain(|(_, k)| *k != rec.key);
                        snap.records.insert(rec.key, rec);
                    }
                    other => return Err(format!("unknown frame kind \"{other}\"")),
                }
                Ok(())
            })();
            match classify {
                Ok(()) => {
                    if lineno == 0 && snap.meta.is_none() {
                        return Err(JournalError::MissingHeader);
                    }
                    snap.frames += 1;
                    snap.valid_len = (*offset + raw.len() + 1) as u64;
                }
                Err(_) if last => {
                    snap.torn = true;
                    snap.valid_len = *offset as u64;
                    return Ok(snap);
                }
                Err(reason) => {
                    return Err(JournalError::CorruptFrame {
                        line: lineno + 1,
                        reason,
                    });
                }
            }
        }
        if unterminated_tail {
            snap.torn = true;
        }
        Ok(snap)
    }

    /// Opens (creating if necessary) a journal for appending, bound to
    /// `meta`.
    ///
    /// * Missing or empty file: a fresh header is written.
    /// * Existing journal: the header must match `meta` exactly, else
    ///   the journal is refused as [`JournalError::Stale`] — a journal
    ///   from an older code version or a different machine config must
    ///   never be silently reused.
    /// * A torn tail is physically truncated so new appends continue
    ///   from the last intact frame.
    ///
    /// Returns the open journal and the snapshot of surviving records.
    pub fn open_resume(
        path: &Path,
        meta: &JournalMeta,
    ) -> Result<(Journal, JournalSnapshot), JournalError> {
        let mut snap = Journal::load_or_empty(path)?;
        match &snap.meta {
            None => {}
            Some(found) => {
                let checks: [(&'static str, String, String); 5] = [
                    ("format", meta.format.to_string(), found.format.to_string()),
                    (
                        "code_version",
                        meta.code_version.clone(),
                        found.code_version.clone(),
                    ),
                    (
                        "config_fingerprint",
                        meta.config_fingerprint.clone(),
                        found.config_fingerprint.clone(),
                    ),
                    (
                        "seed",
                        format!("{:016x}", meta.seed),
                        format!("{:016x}", found.seed),
                    ),
                    (
                        "design_fingerprint",
                        format!("{:016x}", meta.design_fingerprint),
                        format!("{:016x}", found.design_fingerprint),
                    ),
                ];
                for (field, expected, found) in checks {
                    if expected != found {
                        return Err(JournalError::Stale {
                            field,
                            expected,
                            found,
                        });
                    }
                }
            }
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| io_err(path, "create-dir", e))?;
            }
        }
        // O_APPEND: every frame is one atomic append, so a straggling
        // writer from a previous incarnation cannot interleave bytes
        // *inside* a frame written by this one — at worst it adds whole
        // frames, which last-write-wins replay absorbs.
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        // Drop any torn tail so appends continue from the intact prefix.
        file.set_len(snap.valid_len)
            .map_err(|e| io_err(path, "truncate", e))?;
        let mut journal = Journal {
            file,
            path: path.to_owned(),
        };
        if snap.meta.is_none() {
            journal.append_json(&header_json(meta))?;
            snap.meta = Some(meta.clone());
        }
        Ok((journal, snap))
    }

    fn append_json(&mut self, json: &str) -> Result<(), JournalError> {
        let line = frame_line(json);
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, "append", e))?;
        self.file
            .flush()
            .map_err(|e| io_err(&self.path, "flush", e))?;
        Ok(())
    }

    /// Appends a `begin` intent marker: "this point is now in flight".
    /// A begin without a later matching point record marks the point a
    /// crashed worker was executing ([`JournalSnapshot::dangling_begins`]).
    pub fn append_begin(&mut self, index: usize, key: JournalKey) -> Result<(), JournalError> {
        self.append_json(&format!(
            "{{\"kind\":\"begin\",\"idx\":{index},\"key\":\"{key}\"}}"
        ))
    }

    /// Appends one completed point record.
    pub fn append_point(&mut self, record: &PointRecord) -> Result<(), JournalError> {
        self.append_json(&record.to_json())
    }

    /// Forces the journal contents to stable storage (fsync).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "sync", e))
    }
}

/// A canonical 64-bit digest of a resilient campaign result: a pure
/// function of every run's levels, fate, panics and exact sample bits
/// (in design order). Two results are bit-identical iff their digests
/// match, which lets processes compare results across address spaces.
pub fn result_digest(result: &super::resilience::ResilientCampaignResult) -> u64 {
    let mut h = FNV_OFFSET;
    for (idx, run) in result.runs.iter().enumerate() {
        let rec = PointRecord::from_run(idx, JournalKey(0), run);
        let json = rec.to_json();
        h = fnv1a(h, &(json.len() as u64).to_le_bytes());
        h = fnv1a(h, json.as_bytes());
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::design::Factor;
    use std::fs;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scibench-journal-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("campaign.journal")
    }

    fn demo_design() -> Design {
        Design::new(vec![
            Factor::new("system", &["a", "b"]),
            Factor::numeric("size", &[8.0, 64.0]),
        ])
    }

    fn demo_meta() -> JournalMeta {
        JournalMeta::new(&demo_design(), 42, "test-v1", "machine=demo")
    }

    fn demo_run(nan: bool) -> ResilientRun {
        ResilientRun {
            point: RunPoint {
                levels: vec!["a".into(), "8".into()],
            },
            outcome: Some(MeasurementOutcome {
                name: "op \"quoted\"\nline".into(),
                warmup_samples: vec![0.5],
                samples: vec![
                    1.0,
                    -2.5e-300,
                    if nan { f64::NAN } else { 3.0 },
                    f64::INFINITY,
                ],
                converged: true,
            }),
            fate: PointFate::Completed {
                attempts: 2,
                samples_dropped: 1,
            },
            panics_contained: 1,
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn keys_are_stable_and_sensitive() {
        let meta = demo_meta();
        let points = demo_design().full_factorial();
        let k0 = point_key(&meta, &points[0]);
        assert_eq!(k0, point_key(&meta, &points[0]));
        assert_ne!(k0, point_key(&meta, &points[1]));
        let mut other = meta.clone();
        other.seed = 43;
        assert_ne!(k0, point_key(&other, &points[0]));
        let mut other = meta.clone();
        other.code_version = "test-v2".into();
        assert_ne!(k0, point_key(&other, &points[0]));
        let mut other = meta.clone();
        other.config_fingerprint = "machine=other".into();
        assert_ne!(k0, point_key(&other, &points[0]));
    }

    #[test]
    fn record_roundtrip_is_bit_exact_including_nan() {
        let run = demo_run(true);
        let rec = PointRecord::from_run(3, JournalKey(0xdead_beef), &run);
        let json = rec.to_json();
        let parsed = PointRecord::from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(parsed.index, 3);
        assert_eq!(parsed.key, JournalKey(0xdead_beef));
        assert_eq!(parsed.fate, rec.fate);
        assert_eq!(parsed.panics_contained, 1);
        let (a, b) = (
            parsed.outcome.as_ref().unwrap(),
            rec.outcome.as_ref().unwrap(),
        );
        assert_eq!(a.name, b.name);
        assert_eq!(a.converged, b.converged);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.samples), bits(&b.samples));
        assert_eq!(bits(&a.warmup_samples), bits(&b.warmup_samples));
    }

    #[test]
    fn timed_out_and_abandoned_fates_roundtrip() {
        for fate in [
            PointFate::TimedOut {
                attempts: 7,
                elapsed_ns: 1.5e9,
            },
            PointFate::Abandoned {
                attempts: 3,
                last_error: "panicked: \"boom\"\n".into(),
            },
        ] {
            let rec = PointRecord {
                index: 0,
                key: JournalKey(1),
                levels: vec!["x".into()],
                fate: fate.clone(),
                panics_contained: 0,
                outcome: None,
                notes: vec!["note one".into()],
                sketch: None,
            };
            let parsed = PointRecord::from_json(&parse_json(&rec.to_json()).unwrap()).unwrap();
            assert_eq!(parsed.fate, fate);
            assert!(parsed.outcome.is_none());
            assert_eq!(parsed.notes, vec!["note one".to_string()]);
            assert!(parsed.sketch.is_none());
        }
    }

    #[test]
    fn sketch_field_roundtrips_bit_exactly_and_is_optional() {
        // A record with an embedded NaN-bearing sketch wire form must
        // survive the JSON round trip byte-for-byte; records written
        // before the field existed must still parse.
        let wire = "ss1|thr=16|delta=200|mom=om1;2;1;3ff8000000000000;\
                    0000000000000000;3ff8000000000000;3ff8000000000000|grid=-|\
                    repr=exact:3ff8000000000000,7ff8000000000000";
        let rec = PointRecord {
            index: 4,
            key: JournalKey(0xdead_beef),
            levels: vec!["n=8".into()],
            fate: PointFate::Completed {
                attempts: 1,
                samples_dropped: 0,
            },
            panics_contained: 0,
            outcome: None,
            notes: Vec::new(),
            sketch: Some(wire.to_owned()),
        };
        let parsed = PointRecord::from_json(&parse_json(&rec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.sketch.as_deref(), Some(wire));
        assert_eq!(parsed.to_json(), rec.to_json());
        // Pre-sketch-era JSON (no "sketch" key) parses as None.
        let legacy = rec
            .to_json()
            .replace(&format!(",\"sketch\":\"{wire}\""), "");
        let parsed = PointRecord::from_json(&parse_json(&legacy).unwrap()).unwrap();
        assert!(parsed.sketch.is_none());
    }

    #[test]
    fn empty_file_is_an_empty_snapshot() {
        let path = tmp_path("empty");
        fs::write(&path, b"").unwrap();
        let snap = Journal::load(&path).unwrap();
        assert!(snap.meta.is_none());
        assert_eq!(snap.frames, 0);
        assert!(!snap.torn);
        // Resume treats it as fresh: header written, journal usable.
        let (mut journal, snap) = Journal::open_resume(&path, &demo_meta()).unwrap();
        assert_eq!(snap.records.len(), 0);
        journal.append_begin(0, JournalKey(9)).unwrap();
        drop(journal);
        let snap = Journal::load(&path).unwrap();
        assert_eq!(snap.meta, Some(demo_meta()));
        assert_eq!(snap.dangling_begins, vec![(0, JournalKey(9))]);
    }

    #[test]
    fn missing_file_load_or_empty() {
        let path = tmp_path("missing");
        assert!(Journal::load(&path).is_err());
        let snap = Journal::load_or_empty(&path).unwrap();
        assert_eq!(snap.frames, 0);
    }

    #[test]
    fn torn_trailing_record_is_truncated_and_appends_continue() {
        let path = tmp_path("torn");
        let meta = demo_meta();
        let (mut journal, _) = Journal::open_resume(&path, &meta).unwrap();
        let rec = PointRecord::from_run(0, JournalKey(7), &demo_run(false));
        journal.append_point(&rec).unwrap();
        drop(journal);
        let intact = fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a frame, no newline.
        let mut bytes = fs::read(&path).unwrap();
        let torn = frame_line(&rec.to_json());
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        fs::write(&path, &bytes).unwrap();

        let snap = Journal::load(&path).unwrap();
        assert!(snap.torn);
        assert_eq!(snap.valid_len, intact);
        assert_eq!(snap.records.len(), 1);

        // Resume truncates the torn tail and appends cleanly after it.
        let (mut journal, snap) = Journal::open_resume(&path, &meta).unwrap();
        assert_eq!(snap.records.len(), 1);
        let rec2 = PointRecord::from_run(1, JournalKey(8), &demo_run(false));
        journal.append_point(&rec2).unwrap();
        drop(journal);
        let snap = Journal::load(&path).unwrap();
        assert!(!snap.torn);
        assert_eq!(snap.records.len(), 2);
    }

    #[test]
    fn torn_trailing_crc_mismatch_is_tolerated() {
        let path = tmp_path("torn-crc");
        let meta = demo_meta();
        let (mut journal, _) = Journal::open_resume(&path, &meta).unwrap();
        journal
            .append_point(&PointRecord::from_run(0, JournalKey(7), &demo_run(false)))
            .unwrap();
        drop(journal);
        // A complete line whose payload was corrupted in place: if it is
        // the last line it is treated as torn, not as corruption.
        let mut bytes = fs::read(&path).unwrap();
        let line = frame_line("{\"kind\":\"begin\",\"idx\":1,\"key\":\"0002\"}");
        let mut corrupted = line.into_bytes();
        let mid = corrupted.len() - 5;
        corrupted[mid] ^= 0x01;
        bytes.extend_from_slice(&corrupted);
        fs::write(&path, &bytes).unwrap();
        let snap = Journal::load(&path).unwrap();
        assert!(snap.torn);
        assert_eq!(snap.records.len(), 1);
    }

    #[test]
    fn corrupt_middle_frame_is_a_typed_error() {
        let path = tmp_path("corrupt");
        let meta = demo_meta();
        let (mut journal, _) = Journal::open_resume(&path, &meta).unwrap();
        journal
            .append_point(&PointRecord::from_run(0, JournalKey(1), &demo_run(false)))
            .unwrap();
        journal
            .append_point(&PointRecord::from_run(1, JournalKey(2), &demo_run(false)))
            .unwrap();
        drop(journal);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte inside the *second* frame (the first
        // point record), which is not the trailing frame.
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 30] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match Journal::load(&path) {
            Err(JournalError::CorruptFrame { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        // open_resume refuses it the same way.
        assert!(matches!(
            Journal::open_resume(&path, &meta),
            Err(JournalError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn duplicate_keys_last_write_wins() {
        let path = tmp_path("dups");
        let meta = demo_meta();
        let (mut journal, _) = Journal::open_resume(&path, &meta).unwrap();
        let mut rec = PointRecord::from_run(0, JournalKey(5), &demo_run(false));
        journal.append_point(&rec).unwrap();
        rec.fate = PointFate::Abandoned {
            attempts: 9,
            last_error: "second write".into(),
        };
        rec.outcome = None;
        journal.append_point(&rec).unwrap();
        drop(journal);
        let snap = Journal::load(&path).unwrap();
        assert_eq!(snap.records.len(), 1);
        let rec = snap.record_for(JournalKey(5)).unwrap();
        assert!(matches!(rec.fate, PointFate::Abandoned { attempts: 9, .. }));
    }

    #[test]
    fn stale_journal_is_refused_not_reused() {
        let path = tmp_path("stale");
        let meta = demo_meta();
        let (journal, _) = Journal::open_resume(&path, &meta).unwrap();
        drop(journal);
        // Same design point content, newer code version: the key would
        // differ anyway, but the header check refuses the whole file
        // before any record could be considered.
        let mut newer = meta.clone();
        newer.code_version = "test-v2".into();
        match Journal::open_resume(&path, &newer) {
            Err(JournalError::Stale {
                field,
                expected,
                found,
            }) => {
                assert_eq!(field, "code_version");
                assert_eq!(expected, "test-v2");
                assert_eq!(found, "test-v1");
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        // Different seed: refused too.
        let mut reseeded = meta.clone();
        reseeded.seed = 43;
        assert!(matches!(
            Journal::open_resume(&path, &reseeded),
            Err(JournalError::Stale { field: "seed", .. })
        ));
        // Different design shape: refused.
        let other_design = Design::new(vec![Factor::new("system", &["a"])]);
        let other_meta = JournalMeta::new(&other_design, 42, "test-v1", "machine=demo");
        assert!(matches!(
            Journal::open_resume(&path, &other_meta),
            Err(JournalError::Stale {
                field: "design_fingerprint",
                ..
            })
        ));
    }

    #[test]
    fn begin_then_point_clears_dangling() {
        let path = tmp_path("dangling");
        let meta = demo_meta();
        let (mut journal, _) = Journal::open_resume(&path, &meta).unwrap();
        journal.append_begin(0, JournalKey(1)).unwrap();
        journal.append_begin(1, JournalKey(2)).unwrap();
        journal
            .append_point(&PointRecord::from_run(0, JournalKey(1), &demo_run(false)))
            .unwrap();
        drop(journal);
        let snap = Journal::load(&path).unwrap();
        assert_eq!(snap.dangling_begins, vec![(1, JournalKey(2))]);
        assert_eq!(snap.records.len(), 1);
    }

    #[test]
    fn non_header_first_frame_is_rejected() {
        let path = tmp_path("headless");
        let line = frame_line("{\"kind\":\"begin\",\"idx\":0,\"key\":\"01\"}");
        // Two frames so the first is not the (tolerated) trailing one.
        fs::write(&path, format!("{line}{line}")).unwrap();
        let err = Journal::load(&path).unwrap_err();
        assert!(
            matches!(err, JournalError::CorruptFrame { line: 1, .. })
                || matches!(err, JournalError::MissingHeader),
            "{err:?}"
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = JournalError::Stale {
            field: "code_version",
            expected: "v2".into(),
            found: "v1".into(),
        };
        assert!(e.to_string().contains("stale journal refused"));
        let e = JournalError::CorruptFrame {
            line: 3,
            reason: "CRC mismatch".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
