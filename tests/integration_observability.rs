//! End-to-end observability properties: a fully traced measurement
//! campaign must be **bit-identical** to the untraced one at any thread
//! count (tracing is an observer, never a participant — the harness's
//! own Rule 4/5 obligation), and the non-schedule event stream must be
//! a pure function of the seed and design.

use proptest::prelude::*;

use scibench::experiment::campaign::{
    run_campaign, run_campaign_traced, CampaignConfig, CampaignResult,
};
use scibench::experiment::design::{Design, Factor, RunPoint};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench::experiment::resilience::{
    run_campaign_resilient, run_campaign_resilient_traced, RetryPolicy,
};
use scibench_sim::rng::SimRng;
use scibench_trace::{category, to_chrome_json, validate_chrome_trace, Trace, Tracer};

fn design(sizes: usize) -> Design {
    let levels: Vec<f64> = (0..sizes).map(|i| (1u64 << (3 + i)) as f64).collect();
    Design::new(vec![
        Factor::new("system", &["lib-a", "lib-b"]),
        Factor::numeric("size", &levels),
    ])
}

fn measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
    let base = if point.level(0) == "lib-a" { 1.0 } else { 1.5 };
    let size: f64 = point.level(1).parse().expect("numeric level");
    base + size.ln() * 0.1 + rng.uniform() * 0.3
}

fn plan(samples: usize) -> MeasurementPlan {
    MeasurementPlan::new("latency").stopping(StoppingRule::FixedCount(samples))
}

/// Runs the traced campaign, returning the result and drained trace.
fn traced(seed: u64, sizes: usize, samples: usize, threads: usize) -> (CampaignResult, Trace) {
    let tracer = Tracer::new();
    let result = run_campaign_traced(
        &design(sizes),
        &plan(samples),
        &CampaignConfig { seed, threads },
        Some(&tracer),
        measure,
    )
    .expect("traced campaign");
    (result, tracer.drain())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn traced_campaign_is_bit_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        sizes in 1usize..4,
        samples in 5usize..40,
    ) {
        let untraced = run_campaign(
            &design(sizes),
            &plan(samples),
            &CampaignConfig { seed, threads: 1 },
            measure,
        ).expect("untraced campaign");
        for threads in [1usize, 2, 8] {
            let (result, trace) = traced(seed, sizes, samples, threads);
            prop_assert_eq!(
                &result, &untraced,
                "traced result diverged at {} threads", threads
            );
            // One span + one counter per design point, at any thread count.
            let points = 2 * sizes;
            prop_assert_eq!(trace.count(category::CAMPAIGN), 2 * points);
            prop_assert_eq!(trace.count(category::POOL), points);
        }
    }

    #[test]
    fn trace_event_counts_are_a_function_of_the_seed(
        seed in 0u64..1_000_000,
        samples in 5usize..40,
    ) {
        let (_, at_one) = traced(seed, 2, samples, 1);
        let (_, at_four) = traced(seed, 2, samples, 4);
        prop_assert_eq!(
            at_one.deterministic_counts(),
            at_four.deterministic_counts()
        );
        // The full export stays schema-valid for every seed.
        let json = to_chrome_json(&at_four);
        prop_assert_eq!(validate_chrome_trace(&json), Ok(at_four.len()));
    }

    #[test]
    fn traced_resilient_campaign_is_bit_identical(
        seed in 0u64..1_000_000,
        samples in 5usize..30,
    ) {
        let policy = RetryPolicy::default();
        let plain = run_campaign_resilient(
            &design(2),
            &plan(samples),
            &CampaignConfig { seed, threads: 2 },
            &policy,
            |point, rng| Ok(measure(point, rng)),
        ).expect("untraced resilient campaign");
        let tracer = Tracer::new();
        let traced = run_campaign_resilient_traced(
            &design(2),
            &plan(samples),
            &CampaignConfig { seed, threads: 2 },
            &policy,
            Some(&tracer),
            |point, rng| Ok(measure(point, rng)),
        ).expect("traced resilient campaign");
        prop_assert_eq!(traced, plain);
        let trace = tracer.drain();
        // Every point opens a RESILIENCE point-span and an attempt-span.
        prop_assert!(trace.count(category::RESILIENCE) >= 2 * 4);
    }
}
