//! A bulk-synchronous (BSP) application model: noise propagation.
//!
//! §4.2.1 of the paper: "It is important to consider the impact of
//! system noise in the experimental design where small perturbations in
//! one process can propagate to other processes." A BSP code makes that
//! mechanism maximal: every iteration ends in a collective, so each
//! iteration runs at the pace of the *slowest* rank — the expected
//! iteration time grows like the expected maximum of `p` noisy draws,
//! which is how a 0.1 % per-rank noise level becomes a double-digit
//! slowdown at scale (Petrini et al., the paper's ref. 47; Hoefler et
//! al., ref. 26).
//!
//! The model also exposes per-rank *application* imbalance ("the
//! application (e.g., load balancing)" noise source of §1), separate
//! from system noise.

use serde::{Deserialize, Serialize};

use crate::alloc::Allocation;
use crate::collectives::allreduce;
use crate::machine::MachineSpec;
use crate::rng::SimRng;

/// Configuration of a BSP application run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BspConfig {
    /// Number of iterations (supersteps).
    pub iterations: usize,
    /// Mean compute time per rank per iteration, nanoseconds.
    pub work_ns: f64,
    /// Static application imbalance: rank `r`'s work is scaled by
    /// `1 + imbalance · r/(p−1)` (a linear skew; 0 = perfectly balanced).
    pub imbalance: f64,
    /// Payload of the per-iteration allreduce, bytes.
    pub allreduce_bytes: usize,
}

impl BspConfig {
    /// A balanced BSP kernel with the given per-iteration work.
    pub fn balanced(iterations: usize, work_ns: f64) -> Self {
        Self {
            iterations,
            work_ns,
            imbalance: 0.0,
            allreduce_bytes: 8,
        }
    }
}

/// Result of one BSP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspRun {
    /// Total wall time, nanoseconds.
    pub total_ns: f64,
    /// Per-rank time spent computing, nanoseconds.
    pub compute_ns: Vec<f64>,
    /// Per-rank time spent waiting at synchronization, nanoseconds.
    pub wait_ns: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

impl BspRun {
    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.compute_ns.len()
    }

    /// Fraction of the run each rank spent waiting (noise + imbalance
    /// cost).
    pub fn wait_fraction(&self, rank: usize) -> f64 {
        self.wait_ns[rank] / self.total_ns.max(1e-300)
    }

    /// The parallel efficiency proxy: mean compute time over total time.
    pub fn efficiency(&self) -> f64 {
        let mean_compute = self.compute_ns.iter().sum::<f64>() / self.compute_ns.len() as f64;
        mean_compute / self.total_ns.max(1e-300)
    }
}

/// Simulates one BSP run on an allocation.
pub fn bsp_run(
    machine: &MachineSpec,
    alloc: &Allocation,
    config: &BspConfig,
    rng: &mut SimRng,
) -> BspRun {
    let p = alloc.ranks();
    assert!(p >= 1, "BSP needs at least one rank");
    assert!(config.iterations >= 1, "BSP needs at least one iteration");

    let mut compute_ns = vec![0.0f64; p];
    let mut wait_ns = vec![0.0f64; p];
    let mut now = 0.0f64; // iterations are globally synchronized

    for _ in 0..config.iterations {
        // Compute phase: per-rank noisy work with static imbalance.
        let mut finish = vec![0.0f64; p];
        for r in 0..p {
            let skew = if p > 1 {
                1.0 + config.imbalance * r as f64 / (p as f64 - 1.0)
            } else {
                1.0
            };
            let work = machine.noise.perturb(config.work_ns * skew, rng);
            compute_ns[r] += work;
            finish[r] = now + work;
        }
        let compute_end = finish.iter().cloned().fold(0.0, f64::max);

        // Synchronization: allreduce starting when the slowest rank is
        // done (the collective's internal skew is modeled by the
        // collective itself).
        let sync = allreduce(machine, alloc, config.allreduce_bytes, rng);
        // p >= 1 is asserted by the collective, so the outcome is never empty.
        let iter_end = compute_end + sync.max_ns().unwrap_or(0.0);
        for r in 0..p {
            // Waiting = everything that is not own compute.
            wait_ns[r] += iter_end - finish[r];
        }
        now = iter_end;
    }

    BspRun {
        total_ns: now,
        compute_ns,
        wait_ns,
        iterations: config.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationPolicy;

    fn run_on(machine: &MachineSpec, p: usize, config: &BspConfig, seed: u64) -> BspRun {
        let mut rng = SimRng::new(seed);
        let alloc = Allocation::one_rank_per_node(machine, p, AllocationPolicy::Packed, &mut rng);
        bsp_run(machine, &alloc, config, &mut rng)
    }

    #[test]
    fn quiet_balanced_run_has_no_wait_beyond_collectives() {
        let m = MachineSpec::test_machine(8);
        let c = BspConfig::balanced(10, 100_000.0);
        let r = run_on(&m, 8, &c, 1);
        assert_eq!(r.ranks(), 8);
        assert_eq!(r.iterations, 10);
        // All ranks compute the same amount on a quiet machine.
        for w in r.compute_ns.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
        // Waiting is exactly the collective time (identical per rank).
        assert!(r.wait_fraction(0) < 0.2, "wait {}", r.wait_fraction(0));
        assert!(r.efficiency() > 0.8);
    }

    #[test]
    fn noise_amplifies_with_scale() {
        // The §4.2.1 effect: the same noisy machine wastes a larger
        // fraction of time at larger scale (max of p draws grows).
        let m = MachineSpec::piz_daint();
        let c = BspConfig::balanced(20, 1.0e6);
        let eff_small = run_on(&m, 4, &c, 2).efficiency();
        let eff_large = run_on(&m, 64, &c, 2).efficiency();
        assert!(
            eff_large < eff_small,
            "efficiency should drop with scale: {eff_small} -> {eff_large}"
        );
    }

    #[test]
    fn imbalance_shifts_waiting_to_fast_ranks() {
        let m = MachineSpec::test_machine(8);
        let c = BspConfig {
            imbalance: 0.5,
            ..BspConfig::balanced(10, 100_000.0)
        };
        let r = run_on(&m, 8, &c, 3);
        // Rank 0 (least work) waits the most; the last rank the least.
        assert!(r.wait_ns[0] > r.wait_ns[7], "{:?}", r.wait_ns);
        assert!(r.compute_ns[7] > r.compute_ns[0] * 1.4);
    }

    #[test]
    fn total_time_consistency() {
        let m = MachineSpec::test_machine(4);
        let c = BspConfig::balanced(5, 50_000.0);
        let r = run_on(&m, 4, &c, 4);
        // compute + wait = total, per rank.
        for rank in 0..4 {
            let sum = r.compute_ns[rank] + r.wait_ns[rank];
            assert!(
                (sum - r.total_ns).abs() < 1e-6,
                "rank {rank}: {sum} vs {}",
                r.total_ns
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = MachineSpec::piz_daint();
        let c = BspConfig::balanced(5, 1e5);
        let a = run_on(&m, 16, &c, 5);
        let b = run_on(&m, 16, &c, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_never_waits_long() {
        let m = MachineSpec::test_machine(2);
        let c = BspConfig::balanced(5, 1e5);
        let r = run_on(&m, 1, &c, 6);
        assert!(r.wait_fraction(0) < 1e-9);
        assert!((r.efficiency() - 1.0).abs() < 1e-9);
    }
}
