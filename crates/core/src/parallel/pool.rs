//! Deterministic work-stealing execution of indexed task sets.
//!
//! [`run_indexed`] runs `n` independent tasks, identified by index, on a
//! fixed number of workers. Each worker owns a contiguous index range and
//! claims indices from it with an atomic cursor; a worker whose range is
//! exhausted *steals* from the other ranges, so a straggler task cannot
//! idle the rest of the pool. Results are written into per-index slots —
//! no mutex is touched on the hot path (a mutex guards only the cold
//! panic-collection path).
//!
//! # Determinism contract
//!
//! The pool guarantees that the returned vector is a pure function of the
//! task outputs: slot `i` always holds the result of task `i`, no matter
//! which worker executed it or in what order stealing happened. Combined
//! with per-index RNG derivation in the callers (campaign points seed
//! from `(seed, point_index)`, bootstrap replicates from `(seed, rep)`),
//! every result in this crate is bit-identical at any thread count.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use scibench_trace::{category, lane_of, ArgValue, Tracer};

/// Runs tasks `0..n` on up to `threads` workers and returns their results
/// in index order.
///
/// A task that panics yields `Err(payload)` in its slot (the panic is
/// contained per-task; it neither poisons shared state nor kills other
/// workers' tasks). All `n` tasks always run — there is no early abort —
/// so callers can resolve errors in *their* preferred order rather than
/// in scheduling order.
pub fn run_indexed<T, F>(n: usize, threads: usize, task: F) -> Vec<std::thread::Result<T>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_traced(n, threads, None, task)
}

/// [`run_indexed`] with a per-worker scratch state.
///
/// `init` runs once on each worker (lane) to build its private scratch
/// value `S`, and every task executed by that worker receives `&mut S`.
/// This is how hot loops reuse arenas — e.g. a
/// `scibench_sim::compile::ReplayCtx` per lane — without any cross-thread
/// sharing: each scratch value is owned by exactly one worker for the
/// whole call. The determinism contract of [`run_indexed`] is unchanged
/// *provided* the task's output does not depend on scratch contents
/// carried across tasks (an arena of reusable buffers qualifies; an
/// accumulator does not).
pub fn run_indexed_scoped<S, T, I, F>(
    n: usize,
    threads: usize,
    init: I,
    task: F,
) -> Vec<std::thread::Result<T>>
where
    S: Send,
    T: Send + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_indexed_scoped_traced(n, threads, None, init, task)
}

/// [`run_indexed`] with optional tracing.
///
/// When `tracer` is `Some`, each worker records on its own lane: one
/// [`category::POOL`] span per executed task (exactly `n` at any thread
/// count — a deterministic event stream), plus schedule-dependent
/// [`category::SCHED`] events — a per-worker occupancy span, one steal
/// instant per task claimed outside the worker's own range — which vary
/// run-to-run and are excluded from determinism checks. Tracing never
/// influences task execution or result order, so the determinism
/// contract above is unaffected; with `tracer` `None` (or a disabled
/// tracer) every instrumentation point is a single branch.
pub fn run_indexed_traced<T, F>(
    n: usize,
    threads: usize,
    tracer: Option<&Tracer>,
    task: F,
) -> Vec<std::thread::Result<T>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_scoped_traced(n, threads, tracer, || (), |(), i| task(i))
}

/// [`run_indexed_scoped`] with optional tracing (see
/// [`run_indexed_traced`] for the event contract).
pub fn run_indexed_scoped_traced<S, T, I, F>(
    n: usize,
    threads: usize,
    tracer: Option<&Tracer>,
    init: I,
    task: F,
) -> Vec<std::thread::Result<T>>
where
    S: Send,
    T: Send + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_indexed_collect_scoped(n, threads, tracer, init, task).0
}

/// [`run_indexed_scoped_traced`] that additionally returns every worker's
/// scratch value after the run — the pool's fold primitive.
///
/// Each worker accumulates into its private scratch; the caller receives
/// one scratch per *lane* (index = lane id, length = actual worker count)
/// and performs the cross-lane reduction itself. Because stealing moves
/// tasks between lanes nondeterministically, a reduction is only
/// schedule-independent when the fold is insensitive to **which** lane
/// absorbed which task — e.g. a commutative counter, or a keyed map whose
/// union is canonicalized downstream (`scibench_stats::sketch::KeyedPartials`).
/// The streaming campaign runner relies on exactly that structure.
pub fn run_indexed_collect_scoped<S, T, I, F>(
    n: usize,
    threads: usize,
    tracer: Option<&Tracer>,
    init: I,
    task: F,
) -> (Vec<std::thread::Result<T>>, Vec<S>)
where
    S: Send,
    T: Send + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        let mut lane = lane_of(tracer, 0);
        let occupancy = lane.begin();
        let mut scratch = init();
        let out = (0..n)
            .map(|i| {
                let start = lane.begin();
                let result = catch_unwind(AssertUnwindSafe(|| task(&mut scratch, i)));
                lane.end(
                    start,
                    category::POOL,
                    "task",
                    &[
                        ("index", ArgValue::U64(i as u64)),
                        ("stolen", ArgValue::Bool(false)),
                    ],
                );
                result
            })
            .collect();
        lane.end(
            occupancy,
            category::SCHED,
            "worker",
            &[
                ("tasks", ArgValue::U64(n as u64)),
                ("steals", ArgValue::U64(0)),
            ],
        );
        return (out, vec![scratch]);
    }

    // Worker `w` owns the contiguous range `bounds[w]..bounds[w + 1]`.
    let bounds: Vec<usize> = (0..=threads).map(|w| w * n / threads).collect();
    let cursors: Vec<AtomicUsize> = (0..threads).map(|w| AtomicUsize::new(bounds[w])).collect();
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());
    // Scratch hand-back is once-per-worker, so a mutex is fine (cold path).
    let scratches: Mutex<Vec<(usize, S)>> = Mutex::new(Vec::with_capacity(threads));

    {
        let bounds = &bounds;
        let cursors = &cursors;
        let slots = &slots;
        let panics = &panics;
        let scratches = &scratches;
        let task = &task;
        let init = &init;
        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                scope.spawn(move || {
                    let mut lane = lane_of(tracer, w as u32);
                    let occupancy = lane.begin();
                    let mut scratch = init();
                    let mut executed = 0u64;
                    let mut steals = 0u64;
                    // Drain the own range first (probe 0), then steal
                    // from the neighbours in a fixed rotation.
                    for probe in 0..threads {
                        let victim = (w + probe) % threads;
                        let end = bounds[victim + 1];
                        loop {
                            let i = cursors[victim].fetch_add(1, Ordering::Relaxed);
                            if i >= end {
                                break;
                            }
                            if probe > 0 {
                                steals += 1;
                                lane.instant(
                                    category::SCHED,
                                    "steal",
                                    &[
                                        ("victim", ArgValue::U64(victim as u64)),
                                        ("index", ArgValue::U64(i as u64)),
                                    ],
                                );
                            }
                            executed += 1;
                            let start = lane.begin();
                            match catch_unwind(AssertUnwindSafe(|| task(&mut scratch, i))) {
                                Ok(value) => {
                                    let fresh = slots[i].set(value).is_ok();
                                    debug_assert!(fresh, "index {i} claimed twice");
                                }
                                Err(payload) => panics.lock().push((i, payload)),
                            }
                            lane.end(
                                start,
                                category::POOL,
                                "task",
                                &[
                                    ("index", ArgValue::U64(i as u64)),
                                    ("stolen", ArgValue::Bool(probe > 0)),
                                ],
                            );
                        }
                    }
                    lane.end(
                        occupancy,
                        category::SCHED,
                        "worker",
                        &[
                            ("tasks", ArgValue::U64(executed)),
                            ("steals", ArgValue::U64(steals)),
                        ],
                    );
                    scratches.lock().push((w, scratch));
                });
            }
        });
    }

    let mut panic_by_index: Vec<Option<Box<dyn Any + Send>>> = (0..n).map(|_| None).collect();
    for (i, payload) in panics.into_inner() {
        panic_by_index[i] = Some(payload);
    }
    let results = slots
        .into_iter()
        .zip(panic_by_index)
        .map(|(slot, panic)| match panic {
            Some(payload) => Err(payload),
            None => Ok(slot
                .into_inner()
                .expect("every index is claimed by exactly one worker")),
        })
        .collect();
    // Hand scratches back in lane order so callers see a stable layout.
    let mut pairs = scratches.into_inner();
    pairs.sort_by_key(|(w, _)| *w);
    (results, pairs.into_iter().map(|(_, s)| s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(out.len(), 37);
            for (i, r) in out.into_iter().enumerate() {
                assert_eq!(r.unwrap(), i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let out = run_indexed(100, 8, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out.len(), 100);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn stealing_finishes_despite_stragglers() {
        // Give worker 0's range all the slow tasks: with stealing the
        // other workers drain them; without it the call would still
        // finish, so the real assertion is completeness + order.
        let out = run_indexed(64, 8, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i + 1
        });
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(r.unwrap(), i + 1);
        }
    }

    #[test]
    fn panics_are_contained_per_task() {
        let out = run_indexed(10, 4, |i| {
            if i == 3 || i == 7 {
                panic!("boom {i}");
            }
            i
        });
        for (i, r) in out.into_iter().enumerate() {
            if i == 3 || i == 7 {
                let payload = r.expect_err("task panicked");
                let msg = payload.downcast_ref::<String>().unwrap();
                assert_eq!(msg, &format!("boom {i}"));
            } else {
                assert_eq!(r.unwrap(), i);
            }
        }
    }

    #[test]
    fn collect_returns_one_scratch_per_lane_covering_all_tasks() {
        for threads in [1, 2, 3, 8] {
            let (out, scratches) = run_indexed_collect_scoped(
                50,
                threads,
                None,
                Vec::new,
                |scratch: &mut Vec<usize>, i| {
                    scratch.push(i);
                    i
                },
            );
            assert_eq!(out.len(), 50);
            assert_eq!(scratches.len(), threads.min(50));
            let mut seen: Vec<usize> = scratches.into_iter().flatten().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..50).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_counts_tasks() {
        use scibench_trace::category;
        for threads in [1, 2, 8] {
            let plain = run_indexed(25, threads, |i| i * 3);
            let tracer = Tracer::new();
            let traced = run_indexed_traced(25, threads, Some(&tracer), |i| i * 3);
            let plain: Vec<usize> = plain.into_iter().map(|r| r.unwrap()).collect();
            let traced: Vec<usize> = traced.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(plain, traced, "threads={threads}");
            let trace = tracer.drain();
            // Exactly one POOL task span per task at any thread count.
            assert_eq!(trace.count(category::POOL), 25, "threads={threads}");
            assert_eq!(
                trace.deterministic_counts().get(category::POOL),
                Some(&25usize)
            );
            // Schedule-dependent events exist (worker occupancy spans) but
            // are excluded from the deterministic view.
            assert!(trace.count(category::SCHED) >= 1);
            assert!(!trace.deterministic_counts().contains_key(category::SCHED));
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let out = run_indexed_traced(40, 4, Some(&tracer), |i| i + 1);
        assert_eq!(out.len(), 40);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn traced_pool_spans_carry_task_indices() {
        use scibench_trace::{category, EventKind};
        let tracer = Tracer::new();
        let _ = run_indexed_traced(10, 3, Some(&tracer), |i| i);
        let trace = tracer.drain();
        let mut indices: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.cat == category::POOL && matches!(e.kind, EventKind::Span { .. }))
            .filter_map(|e| match e.arg("index") {
                Some(scibench_trace::ArgValue::U64(i)) => Some(*i),
                _ => None,
            })
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..10u64).collect::<Vec<_>>());
    }

    use scibench_trace::Tracer;

    #[test]
    fn scoped_scratch_is_per_worker_and_reused() {
        // Each worker gets its own Vec arena; tasks record the arena
        // address to prove no cross-thread sharing, and results must be
        // identical to the unscoped run at every thread count.
        for threads in [1, 2, 8] {
            let out = run_indexed_scoped(
                50,
                threads,
                || Vec::<u64>::with_capacity(64),
                |arena, i| {
                    arena.clear();
                    arena.extend((0..=i as u64).map(|x| x * x));
                    (arena.as_ptr() as usize, arena.iter().sum::<u64>())
                },
            );
            let plain = run_indexed(50, threads, |i| (0..=i as u64).map(|x| x * x).sum::<u64>());
            let mut arenas = std::collections::HashSet::new();
            for (i, (r, p)) in out.into_iter().zip(plain).enumerate() {
                let (ptr, sum) = r.unwrap();
                assert_eq!(sum, p.unwrap(), "threads={threads} task={i}");
                arenas.insert(ptr);
            }
            // At most one arena per worker (reallocation can add a few,
            // but never one per task).
            assert!(arenas.len() <= threads.max(1) * 2, "threads={threads}");
        }
    }

    #[test]
    fn degenerate_shapes() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        let one = run_indexed(1, 16, |i| i + 5);
        assert_eq!(one[0].as_ref().unwrap(), &5);
        // More threads than tasks clamps cleanly.
        let out = run_indexed(3, 100, |i| i);
        assert_eq!(out.len(), 3);
    }
}
