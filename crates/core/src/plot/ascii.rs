//! Terminal rendering of plot data.
//!
//! The figure-regeneration binaries print their results as ASCII charts
//! so a paper figure can be inspected without leaving the terminal; the
//! same data is exported as CSV for external plotting.

use scibench_stats::kde::DensityEstimate;

use super::boxplot::BoxPlotStats;
use super::series::Series;

/// Renders a density curve as a fixed-width ASCII chart.
///
/// `width` columns × `height` rows; the y axis is density, the x axis is
/// annotated with the grid extremes.
pub fn render_density(d: &DensityEstimate, width: usize, height: usize) -> String {
    let width = width.clamp(16, 240);
    let height = height.clamp(4, 64);
    let x_lo = d.x[0];
    let x_hi = *d.x.last().unwrap();

    // Resample the curve to `width` columns, normalized to the resampled
    // peak so the chart always reaches the top row.
    let raw: Vec<f64> = (0..width)
        .map(|c| {
            let x = x_lo + (x_hi - x_lo) * c as f64 / (width - 1) as f64;
            d.at(x)
        })
        .collect();
    let peak = raw.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let cols: Vec<f64> = raw.into_iter().map(|v| v / peak).collect();

    let mut out = String::new();
    for row in 0..height {
        let level = 1.0 - row as f64 / height as f64;
        for &v in &cols {
            out.push(if v >= level { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let right = format!("{x_hi:.4}");
    let left = format!("{x_lo:.4}");
    let pad = width.saturating_sub(left.len() + right.len());
    out.push_str(&format!("{left}{}{right}\n", " ".repeat(pad)));
    out
}

/// Renders one box plot as a single annotated line on the given value
/// range.
pub fn render_box(b: &BoxPlotStats, lo: f64, hi: f64, width: usize) -> String {
    let width = width.clamp(16, 240);
    debug_assert!(hi > lo);
    let pos = |v: f64| -> usize {
        (((v - lo) / (hi - lo)).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize
    };
    let mut line = vec![' '; width];
    // Whisker span.
    let (wl, wh) = (pos(b.whisker_low), pos(b.whisker_high));
    for cell in line.iter_mut().take(wh + 1).skip(wl) {
        *cell = '-';
    }
    // Box span.
    let (ql, qh) = (pos(b.five_number.q1), pos(b.five_number.q3));
    for cell in line.iter_mut().take(qh + 1).skip(ql) {
        *cell = '=';
    }
    // Median and mean markers (median wins on collisions).
    line[pos(b.mean)] = '+';
    line[pos(b.five_number.median)] = '|';
    // Outliers.
    for &o in &b.outliers {
        line[pos(o)] = 'o';
    }
    let body: String = line.into_iter().collect();
    format!("{body}  {} ({})\n", b.label, b.whisker_rule.describe())
}

/// Renders a violin as a symmetric horizontal silhouette with quartile
/// markers (`|` median, `:` quartiles, `+` mean).
pub fn render_violin(v: &crate::plot::violin::ViolinData, width: usize, height: usize) -> String {
    let width = width.clamp(16, 240);
    let height = height.clamp(5, 63) | 1; // odd: a true center row exists
    let x_lo = v.density.x[0];
    let x_hi = *v.density.x.last().unwrap();
    let half = height / 2;

    let mut out = String::new();
    for row in 0..height {
        // Distance from the center row, normalized to [0, 1].
        let dist = (row as isize - half as isize).unsigned_abs() as f64 / half as f64;
        for c in 0..width {
            let x = x_lo + (x_hi - x_lo) * c as f64 / (width - 1) as f64;
            let w = v.width_at(x);
            let ch = if w >= dist.max(1e-9) {
                // Inside the silhouette: annotate landmark columns.
                let near =
                    |target: f64| ((x - target) / (x_hi - x_lo)).abs() * (width as f64) < 0.5;
                if near(v.five_number.median) {
                    '|'
                } else if near(v.five_number.q1) || near(v.five_number.q3) {
                    ':'
                } else if near(v.mean) {
                    '+'
                } else {
                    '#'
                }
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let right = format!("{x_hi:.4}");
    let left = format!("{x_lo:.4}");
    let pad = width.saturating_sub(left.len() + right.len());
    out.push_str(&format!("{left}{}{right}\n", " ".repeat(pad)));
    out.push_str(&format!("{} (| median, : quartiles, + mean)\n", v.label));
    out
}

/// Renders multiple series as a scatter/line chart.
pub fn render_series(series: &[&Series], width: usize, height: usize) -> String {
    let width = width.clamp(16, 240);
    let height = height.clamp(4, 64);
    let markers = ['*', 'x', 'o', '@', '%', '&'];

    // Global ranges.
    let mut x_lo = f64::INFINITY;
    let mut x_hi = f64::NEG_INFINITY;
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for s in series {
        for p in &s.points {
            x_lo = x_lo.min(p.x);
            x_hi = x_hi.max(p.x);
        }
        let (l, h) = s.y_range();
        y_lo = y_lo.min(l);
        y_hi = y_hi.max(h);
    }
    if x_hi <= x_lo || !x_hi.is_finite() {
        x_hi = x_lo + 1.0;
    }
    if y_hi <= y_lo || !y_hi.is_finite() {
        y_hi = y_lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    let col = |x: f64| (((x - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize;
    let row = |y: f64| {
        let r = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
        height - 1 - r
    };

    for (si, s) in series.iter().enumerate() {
        let mark = markers[si % markers.len()];
        // Connecting lines first (so markers overwrite them).
        if s.connect_points {
            for w in s.points.windows(2) {
                let (c0, r0) = (col(w[0].x), row(w[0].y));
                let (c1, r1) = (col(w[1].x), row(w[1].y));
                let steps = c0.abs_diff(c1).max(r0.abs_diff(r1)).max(1);
                for t in 0..=steps {
                    let f = t as f64 / steps as f64;
                    let c = (c0 as f64 + (c1 as f64 - c0 as f64) * f).round() as usize;
                    let r = (r0 as f64 + (r1 as f64 - r0 as f64) * f).round() as usize;
                    if grid[r][c] == ' ' {
                        grid[r][c] = '.';
                    }
                }
            }
        }
        // CI bars.
        for p in &s.points {
            if let Some(ci) = p.ci {
                let c = col(p.x);
                let (rl, rh) = (row(ci.lower), row(ci.upper));
                for grid_row in grid.iter_mut().take(rl + 1).skip(rh) {
                    if grid_row[c] == ' ' {
                        grid_row[c] = ':';
                    }
                }
            }
        }
        // Markers.
        for p in &s.points {
            grid[row(p.y)][col(p.x)] = mark;
        }
    }

    let mut out = String::new();
    for r in grid {
        out.push_str(&r.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{} {}   ", markers[si % markers.len()], s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::boxplot::WhiskerRule;
    use scibench_stats::kde::{kde, Bandwidth};

    fn demo_density() -> DensityEstimate {
        let xs: Vec<f64> = (0..500)
            .map(|i| {
                let u = (i as f64 + 0.5) / 500.0;
                scibench_stats::dist::normal::std_normal_inv_cdf(u)
            })
            .collect();
        kde(&xs, Bandwidth::Silverman, 128).unwrap()
    }

    #[test]
    fn density_chart_dimensions() {
        let text = render_density(&demo_density(), 60, 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 12); // 10 rows + axis + labels
        assert!(lines[0].len() <= 60);
        assert!(lines[10].starts_with("---"));
    }

    #[test]
    fn density_peak_reaches_top_row() {
        let text = render_density(&demo_density(), 60, 10);
        let first = text.lines().next().unwrap();
        assert!(first.contains('#'), "top row empty: {first:?}");
    }

    #[test]
    fn box_line_contains_markers() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let b = BoxPlotStats::from_samples("demo", &xs, WhiskerRule::TukeyIqr).unwrap();
        let line = render_box(&b, 0.0, 110.0, 80);
        assert!(line.contains('='));
        assert!(line.contains('|'));
        assert!(line.contains("demo"));
        assert!(line.contains("1.5 IQR"));
    }

    #[test]
    fn box_line_shows_outliers() {
        let mut xs: Vec<f64> = (1..=50).map(f64::from).collect();
        xs.push(1000.0);
        let b = BoxPlotStats::from_samples("o", &xs, WhiskerRule::TukeyIqr).unwrap();
        let line = render_box(&b, 0.0, 1001.0, 100);
        assert!(line.contains('o'));
    }

    #[test]
    fn series_chart_renders_legend_and_markers() {
        let s1 = Series::from_xy("up", &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)], true);
        let s2 = Series::from_xy("down", &[(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)], false);
        let text = render_series(&[&s1, &s2], 40, 10);
        assert!(text.contains("* up"));
        assert!(text.contains("x down"));
        assert!(text.contains('*'));
        assert!(text.contains('x'));
        // Connected series leaves line dots.
        assert!(text.contains('.'));
    }

    #[test]
    fn single_point_series_does_not_panic() {
        let s = Series::from_xy("one", &[(5.0, 5.0)], true);
        let text = render_series(&[&s], 30, 6);
        assert!(text.contains('*'));
    }

    #[test]
    fn violin_renders_symmetric_silhouette_with_markers() {
        use crate::plot::violin::ViolinData;
        let xs: Vec<f64> = (0..800)
            .map(|i| {
                let u = (i as f64 + 0.5) / 800.0;
                5.0 + scibench_stats::dist::normal::std_normal_inv_cdf(u)
            })
            .collect();
        let v = ViolinData::from_samples("demo", &xs, 128).unwrap();
        let text = render_violin(&v, 60, 11);
        assert!(text.contains('#'));
        assert!(text.contains('|'), "median marker missing:\n{text}");
        assert!(text.contains("demo"));
        // Vertical symmetry: row 0 equals row height-1 in shape.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0].chars().filter(|&c| c != ' ').count() > 0,
            lines[10].chars().filter(|&c| c != ' ').count() > 0
        );
        // Center row is the widest.
        let filled = |l: &str| l.chars().filter(|&c| c != ' ').count();
        assert!(filled(lines[5]) >= filled(lines[0]));
    }
}
