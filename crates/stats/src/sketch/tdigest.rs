//! A merging t-digest quantile sketch (Dunning & Ertl).
//!
//! Centroids are kept sorted by mean; incoming samples buffer and are
//! periodically folded in by a single merge pass bounded by the k₁ scale
//! function `k(q) = δ·(asin(2q−1)/π + 1/2)`, which keeps centroids small
//! near the tails (accurate extreme quantiles — exactly where latency
//! distributions matter) and large in the middle. Memory is O(δ)
//! regardless of how many samples stream through.
//!
//! Every operation is a pure function of the current state, so a digest
//! built from the same sequence of pushes has identical bits on every
//! thread/shard — the property the campaign-level determinism rests on.

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::{f64_from_hex, f64_to_hex};

use super::{parse_u64, MergeableSummary};

/// One weighted cluster of nearby samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// Mergeable streaming quantile sketch; see the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TDigest {
    delta: u32,
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    n: u64,
    non_finite: u64,
    min: f64,
    max: f64,
}

/// Buffered samples per compression pass, as a multiple of δ. Larger
/// buffers amortize the O(m log m) merge over more pushes.
const BUFFER_FACTOR: usize = 8;

fn k_scale(q: f64, delta: f64) -> f64 {
    delta * ((2.0 * q - 1.0).clamp(-1.0, 1.0).asin() / std::f64::consts::PI + 0.5)
}

impl TDigest {
    /// Creates an empty digest with compression parameter `delta`
    /// (10 ≤ δ ≤ 10 000; ~100–500 is typical, larger is more accurate).
    pub fn new(delta: u32) -> StatsResult<Self> {
        if !(10..=10_000).contains(&delta) {
            return Err(StatsError::InvalidParameter {
                name: "delta",
                value: delta as f64,
            });
        }
        Ok(Self {
            delta,
            centroids: Vec::new(),
            buffer: Vec::new(),
            n: 0,
            non_finite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        })
    }

    /// The compression parameter δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Exact smallest finite observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Exact largest finite observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Number of centroids currently held (after an internal flush the
    /// count is bounded by ~2δ).
    pub fn centroid_count(&self) -> usize {
        self.centroids.len()
    }

    /// Estimated resident bytes: centroid list + buffer.
    pub fn resident_bytes(&self) -> usize {
        self.centroids.capacity() * std::mem::size_of::<Centroid>()
            + self.buffer.capacity() * 8
            + std::mem::size_of::<Self>()
    }

    fn buffer_capacity(&self) -> usize {
        BUFFER_FACTOR * self.delta as usize
    }

    /// Folds the buffer (and any extra centroids) into the centroid list
    /// with one bounded merge pass.
    fn compress_with(&mut self, extra: Vec<Centroid>) {
        let mut pending: Vec<Centroid> =
            Vec::with_capacity(self.centroids.len() + self.buffer.len() + extra.len());
        pending.append(&mut self.centroids);
        pending.extend(self.buffer.drain(..).map(|x| Centroid {
            mean: x,
            weight: 1.0,
        }));
        pending.extend(extra);
        if pending.is_empty() {
            return;
        }
        // Total order on (mean, weight): all values are finite, and equal
        // (mean, weight) pairs are interchangeable, so the sorted sequence
        // is a pure function of the multiset.
        pending.sort_by(|a, b| {
            (a.mean, a.weight)
                .partial_cmp(&(b.mean, b.weight))
                .expect("centroids are finite")
        });
        let total: f64 = pending.iter().map(|c| c.weight).sum();
        let delta = self.delta as f64;
        let mut out: Vec<Centroid> = Vec::with_capacity(2 * self.delta as usize);
        let mut iter = pending.into_iter();
        let mut cur = iter.next().expect("pending non-empty");
        let mut w_done = 0.0;
        let mut k_limit = k_scale(0.0, delta) + 1.0;
        for c in iter {
            let q = (w_done + cur.weight + c.weight) / total;
            if k_scale(q, delta) <= k_limit {
                // Weighted incremental mean keeps the update stable.
                cur.mean += c.weight / (cur.weight + c.weight) * (c.mean - cur.mean);
                cur.weight += c.weight;
            } else {
                w_done += cur.weight;
                k_limit = k_scale(w_done / total, delta) + 1.0;
                out.push(cur);
                cur = c;
            }
        }
        out.push(cur);
        self.centroids = out;
    }

    /// Merges a batch of already-ascending finite values. Used when an
    /// exact partial folds into a digest-mode partial.
    pub(crate) fn merge_sorted_values(&mut self, values: &[f64]) {
        for &x in values {
            self.push(x);
        }
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`), interpolated between centroid
    /// means, anchored at the exact min/max.
    pub fn quantile(&self, p: f64) -> StatsResult<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidProbability {
                name: "p",
                value: p,
            });
        }
        if self.n == 0 {
            return Err(StatsError::EmptySample);
        }
        if !self.buffer.is_empty() {
            let mut flushed = self.clone();
            flushed.compress_with(Vec::new());
            return flushed.quantile(p);
        }
        let total: f64 = self.centroids.iter().map(|c| c.weight).sum();
        let index = p * total;
        // Centroid i covers [cum, cum + w); its mean sits at the midpoint.
        let mut cum = 0.0;
        let mut prev_mid = 0.0;
        let mut prev_mean = self.min;
        for c in &self.centroids {
            let mid = cum + c.weight / 2.0;
            if index <= mid {
                let span = mid - prev_mid;
                let t = if span > 0.0 {
                    (index - prev_mid) / span
                } else {
                    1.0
                };
                return Ok(prev_mean + t * (c.mean - prev_mean));
            }
            prev_mid = mid;
            prev_mean = c.mean;
            cum += c.weight;
        }
        let span = total - prev_mid;
        let t = if span > 0.0 {
            (index - prev_mid) / span
        } else {
            1.0
        };
        Ok(prev_mean + t * (self.max - prev_mean))
    }

    /// Median estimate.
    pub fn median(&self) -> StatsResult<f64> {
        self.quantile(0.5)
    }
}

impl MergeableSummary for TDigest {
    fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.buffer.push(x);
        if self.buffer.len() >= self.buffer_capacity() {
            self.compress_with(Vec::new());
        }
    }

    fn merge_from(&mut self, other: &Self) -> StatsResult<()> {
        if self.delta != other.delta {
            return Err(StatsError::MismatchedSketch("digest delta differs"));
        }
        self.n += other.n;
        self.non_finite += other.non_finite;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut extra = other.centroids.clone();
        extra.extend(other.buffer.iter().map(|&x| Centroid {
            mean: x,
            weight: 1.0,
        }));
        self.compress_with(extra);
        Ok(())
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    fn to_record(&self) -> String {
        // Canonical form: flush the buffer first so the record is a pure
        // function of the absorbed multiset, not of push/flush phase.
        if !self.buffer.is_empty() {
            let mut flushed = self.clone();
            flushed.compress_with(Vec::new());
            return flushed.to_record();
        }
        let centroids: Vec<String> = self
            .centroids
            .iter()
            .map(|c| format!("{}:{}", f64_to_hex(c.mean), f64_to_hex(c.weight)))
            .collect();
        format!(
            "td1;{};{};{};{};{};{}",
            self.delta,
            self.n,
            self.non_finite,
            f64_to_hex(self.min),
            f64_to_hex(self.max),
            centroids.join(",")
        )
    }

    fn from_record(record: &str) -> StatsResult<Self> {
        let parts: Vec<&str> = record.split(';').collect();
        if parts.len() != 7 || parts[0] != "td1" {
            return Err(StatsError::MalformedSketch("expected 7-part td1 record"));
        }
        let delta = parse_u64(parts[1])? as u32;
        let mut digest = TDigest::new(delta)?;
        digest.n = parse_u64(parts[2])?;
        digest.non_finite = parse_u64(parts[3])?;
        digest.min = f64_from_hex(parts[4])?;
        digest.max = f64_from_hex(parts[5])?;
        if !parts[6].is_empty() {
            for c in parts[6].split(',') {
                let (mean, weight) = c
                    .split_once(':')
                    .ok_or(StatsError::MalformedSketch("centroid missing ':'"))?;
                digest.centroids.push(Centroid {
                    mean: f64_from_hex(mean)?,
                    weight: f64_from_hex(weight)?,
                });
            }
        }
        Ok(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_of(sorted: &[f64], x: f64) -> f64 {
        let below = sorted.partition_point(|&v| v <= x);
        below as f64 / sorted.len() as f64
    }

    fn heavy_tailed(n: usize) -> Vec<f64> {
        // Deterministic Pareto-like tail via inverse transform on a
        // low-discrepancy sequence.
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                let u = (u * 0.618_033_988_749_894_8).fract().max(1e-9);
                (1.0 / (1.0 - u)).powf(1.16)
            })
            .collect()
    }

    #[test]
    fn quantiles_track_exact_ranks() {
        let xs = heavy_tailed(50_000);
        let mut d = TDigest::new(200).unwrap();
        for &x in &xs {
            d.push(x);
        }
        let sorted = crate::sorted_copy(&xs);
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = d.quantile(p).unwrap();
            let err = (rank_of(&sorted, est) - p).abs();
            assert!(err <= 0.01, "p={p}: rank error {err}");
        }
        assert_eq!(d.quantile(0.0).unwrap(), sorted[0]);
        assert_eq!(d.quantile(1.0).unwrap(), *sorted.last().unwrap());
        assert!(d.centroid_count() <= 2 * 200);
    }

    #[test]
    fn merge_matches_single_digest_accuracy() {
        let xs = heavy_tailed(40_000);
        let mut whole = TDigest::new(100).unwrap();
        let mut parts: Vec<TDigest> = (0..8).map(|_| TDigest::new(100).unwrap()).collect();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            parts[i % 8].push(x);
        }
        let mut merged = TDigest::new(100).unwrap();
        for p in &parts {
            merged.merge_from(p).unwrap();
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        let sorted = crate::sorted_copy(&xs);
        for p in [0.05, 0.5, 0.95, 0.99] {
            let err = (rank_of(&sorted, merged.quantile(p).unwrap()) - p).abs();
            assert!(err <= 0.02, "p={p}: merged rank error {err}");
        }
    }

    #[test]
    fn push_sequence_is_deterministic() {
        let xs = heavy_tailed(10_000);
        let build = || {
            let mut d = TDigest::new(150).unwrap();
            for &x in &xs {
                d.push(x);
            }
            d
        };
        assert_eq!(build().to_record(), build().to_record());
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let mut d = TDigest::new(50).unwrap();
        for &x in &[3.5, -0.0, 1e-300, 7.25, f64::NAN, 2.0] {
            d.push(x);
        }
        let record = d.to_record();
        let back = TDigest::from_record(&record).unwrap();
        assert_eq!(back.to_record(), record);
        assert_eq!(back.non_finite_count(), 1);
        assert_eq!(back.count(), 5);
        // Signed zero must survive (bit pattern, not value, equality).
        assert!(record.contains(&crate::f64_to_hex(-0.0)));
        // Empty digest round-trips too.
        let empty = TDigest::new(50).unwrap();
        let back = TDigest::from_record(&empty.to_record()).unwrap();
        assert_eq!(back, empty);
        assert!(back.quantile(0.5).is_err());
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(TDigest::new(5).is_err());
        assert!(TDigest::new(20_000).is_err());
        let a = TDigest::new(100).unwrap();
        let mut b = TDigest::new(200).unwrap();
        assert!(matches!(
            b.merge_from(&a),
            Err(StatsError::MismatchedSketch(_))
        ));
        assert!(matches!(
            a.quantile(1.5),
            Err(StatsError::InvalidProbability { .. })
        ));
        assert!(TDigest::from_record("td1;100;0").is_err());
        assert!(TDigest::from_record("nope").is_err());
    }

    #[test]
    fn non_finite_only_digest_stays_empty() {
        let mut d = TDigest::new(100).unwrap();
        d.push(f64::NAN);
        d.push(f64::INFINITY);
        assert_eq!(d.count(), 0);
        assert_eq!(d.non_finite_count(), 2);
        assert_eq!(d.min(), None);
        assert!(d.quantile(0.5).is_err());
        // NaN-bearing (all-quarantined) digest still round-trips.
        let back = TDigest::from_record(&d.to_record()).unwrap();
        assert_eq!(back.to_record(), d.to_record());
    }
}
