//! Criterion benches of the end-to-end figure regeneration pipelines at
//! reduced sample counts — one per table/figure of the paper, so a
//! regression in any stage (simulation, statistics, rendering) shows up
//! as a pipeline slowdown.

use criterion::{criterion_group, criterion_main, Criterion};
use scibench_bench::figures::*;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_pipelines");
    g.sample_size(10);
    g.bench_function("fig1_hpl_50runs", |b| {
        b.iter(|| fig1_hpl::compute(50, 1).unwrap())
    });
    g.bench_function("table1_survey", |b| b.iter(|| table1::compute().render()));
    g.bench_function("fig2_normalization_20k", |b| {
        b.iter(|| fig2_normalization::compute(20_000, 1).unwrap())
    });
    g.bench_function("fig3_significance_20k", |b| {
        b.iter(|| fig3_significance::compute(20_000, 1).unwrap())
    });
    g.bench_function("fig4_quantreg_20k", |b| {
        b.iter(|| fig4_quantreg::compute(20_000, 1).unwrap())
    });
    g.bench_function("fig5_reduce_50runs", |b| {
        b.iter(|| fig5_reduce::compute(50, 1).unwrap())
    });
    g.bench_function("fig6_variation_64x100", |b| {
        b.iter(|| fig6_variation::compute(64, 100, 1).unwrap())
    });
    g.bench_function("fig7ab_bounds_10reps", |b| {
        b.iter(|| fig7ab_bounds::compute(10, 1).unwrap())
    });
    g.bench_function("fig7c_plots_20k", |b| {
        b.iter(|| fig7c_plots::compute(20_000, 1).unwrap())
    });
    g.bench_function("means_worked_example", |b| {
        b.iter(|| means_example::compute().unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
