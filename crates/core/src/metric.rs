//! Typed metrics enforcing Rules 3 and 4 of the paper.
//!
//! §3.1.1 distinguishes **costs** (seconds, flop, joules — summarize with
//! the arithmetic mean), **rates** (flop/s — summarize with the harmonic
//! mean, or better: divide summed costs) and **ratios** (speedups,
//! fractions of peak — "should never be averaged"; the geometric mean is
//! the explicitly-marked last resort).
//!
//! The types make the correct choice the only one that compiles:
//! [`Cost::mean`] is arithmetic, [`Rate::mean`] is harmonic, and
//! [`Ratio`] has no `mean` at all — only
//! [`Ratio::geometric_mean_last_resort`], whose name is the warning.

use serde::{Deserialize, Serialize};

use scibench_stats::error::StatsResult;
use scibench_stats::summary;

use crate::units::Unit;

/// A sample of cost measurements (linear, additive unit such as seconds
/// or flop).
///
/// ```
/// use scibench::metric::Cost;
/// use scibench::units::Unit;
/// // The paper's worked example: three 100-Gflop runs.
/// let costs = Cost::new(vec![10.0, 100.0, 40.0], Unit::Seconds);
/// assert_eq!(costs.mean().unwrap(), 50.0);           // arithmetic (Rule 3)
/// assert_eq!(costs.aggregate_rate(100.0).unwrap(), 2.0); // Gflop/s
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cost {
    values: Vec<f64>,
    unit: Unit,
}

impl Cost {
    /// Creates a cost sample; `unit` must be a cost unit (see
    /// [`Unit::is_cost`]).
    ///
    /// # Panics
    /// Panics if `unit` is a rate unit — that is exactly the category
    /// error Rule 3 exists to prevent.
    pub fn new(values: Vec<f64>, unit: Unit) -> Self {
        assert!(
            unit.is_cost(),
            "{unit} is not a cost unit; use Rate or Ratio"
        );
        Self { values, unit }
    }

    /// The raw measurements.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The unit of the measurements.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Arithmetic mean — the correct summary for costs (Rule 3).
    pub fn mean(&self) -> StatsResult<f64> {
        summary::arithmetic_mean(&self.values)
    }

    /// Total cost across the sample (meaningful because costs are linear).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Derives the rate sample `work / cost` for a fixed amount of work
    /// per measurement (e.g. flop per run / seconds per run → flop/s).
    pub fn rate_for_work(&self, work_per_measurement: f64, rate_unit: Unit) -> Rate {
        Rate::new(
            self.values
                .iter()
                .map(|&c| work_per_measurement / c)
                .collect(),
            rate_unit,
        )
    }

    /// The correct aggregate rate: *total work over total cost* — what the
    /// paper recommends when the absolute counts are available ("we
    /// recommend using the arithmetic mean for both before computing the
    /// rate").
    pub fn aggregate_rate(&self, work_per_measurement: f64) -> StatsResult<f64> {
        Ok(work_per_measurement / self.mean()?)
    }
}

/// A sample of rate measurements (cost per cost, e.g. flop/s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rate {
    values: Vec<f64>,
    unit: Unit,
}

impl Rate {
    /// Creates a rate sample; `unit` must be a rate unit.
    ///
    /// # Panics
    /// Panics if `unit` is not a rate unit.
    pub fn new(values: Vec<f64>, unit: Unit) -> Self {
        assert!(
            unit.is_rate(),
            "{unit} is not a rate unit; use Cost or Ratio"
        );
        Self { values, unit }
    }

    /// The raw measurements.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The unit of the measurements.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Harmonic mean — the correct summary for rates when each
    /// measurement covers the same amount of work (Rule 3).
    pub fn mean(&self) -> StatsResult<f64> {
        summary::harmonic_mean(&self.values)
    }

    /// Work-weighted harmonic mean for measurements covering different
    /// amounts of work.
    pub fn weighted_mean(&self, work: &[f64]) -> StatsResult<f64> {
        summary::weighted_harmonic_mean(&self.values, work)
    }

    /// The *incorrect* arithmetic mean of rates, provided only so that
    /// reports and tests can quantify how misleading it would have been
    /// (the paper's worked example: 4.5 vs the true 2 Gflop/s).
    pub fn arithmetic_mean_for_comparison_only(&self) -> StatsResult<f64> {
        summary::arithmetic_mean(&self.values)
    }
}

/// A sample of dimensionless ratios (speedups, fractions of peak).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ratio {
    values: Vec<f64>,
}

impl Ratio {
    /// Creates a ratio sample.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// The raw ratios.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Geometric mean of the ratios — Rule 4's *last resort*, for when the
    /// underlying costs or rates are unavailable. Prefer recomputing the
    /// ratio from summarized costs.
    pub fn geometric_mean_last_resort(&self) -> StatsResult<f64> {
        summary::geometric_mean(&self.values)
    }

    /// The principled alternative: compute a single ratio from already-
    /// summarized numerator and denominator (e.g. mean time over mean
    /// time), rather than averaging per-pair ratios.
    pub fn of_summaries(numerator_summary: f64, denominator_summary: f64) -> f64 {
        numerator_summary / denominator_summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The worked HPL example of §3.1.1: three runs of 100 Gflop taking
    // (10, 100, 40) s.
    const TIMES: [f64; 3] = [10.0, 100.0, 40.0];
    const WORK: f64 = 100.0; // Gflop

    #[test]
    fn cost_mean_is_arithmetic() {
        let c = Cost::new(TIMES.to_vec(), Unit::Seconds);
        assert_eq!(c.mean().unwrap(), 50.0);
        assert_eq!(c.total(), 150.0);
    }

    #[test]
    fn aggregate_rate_matches_paper() {
        // "The harmonic mean of the rates returns the correct 2 Gflop/s."
        let c = Cost::new(TIMES.to_vec(), Unit::Seconds);
        assert_eq!(c.aggregate_rate(WORK).unwrap(), 2.0);
        let r = c.rate_for_work(WORK, Unit::FlopPerSecond);
        assert!((r.mean().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_mean_of_rates_is_misleading() {
        // "The arithmetic mean of the three rates would be 4.5 Gflop/s,
        // which would not be a good average measure."
        let c = Cost::new(TIMES.to_vec(), Unit::Seconds);
        let r = c.rate_for_work(WORK, Unit::FlopPerSecond);
        assert!((r.arithmetic_mean_for_comparison_only().unwrap() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_ratios_matches_paper() {
        // Relative rates (1, 0.1, 0.25) vs a 10 Gflop/s peak: geometric
        // mean ≈ 0.29 — the paper's "(incorrect) efficiency of 2.9 Gflop/s".
        let ratios = Ratio::new(vec![1.0, 0.1, 0.25]);
        let g = ratios.geometric_mean_last_resort().unwrap();
        assert!((g - 0.2924).abs() < 1e-3, "g = {g}");
    }

    #[test]
    fn ratio_of_summaries_is_the_principled_path() {
        // Correct efficiency: harmonic-mean rate over peak.
        let c = Cost::new(TIMES.to_vec(), Unit::Seconds);
        let eff = Ratio::of_summaries(c.aggregate_rate(WORK).unwrap(), 10.0);
        assert!((eff - 0.2).abs() < 1e-12);
    }

    #[test]
    fn weighted_rate_mean() {
        // 100 Gflop at 10 Gflop/s + 300 Gflop at 30 Gflop/s → 400/20 = 20.
        let r = Rate::new(vec![10.0, 30.0], Unit::FlopPerSecond);
        assert!((r.weighted_mean(&[100.0, 300.0]).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "is not a cost unit")]
    fn cost_rejects_rate_unit() {
        Cost::new(vec![1.0], Unit::FlopPerSecond);
    }

    #[test]
    #[should_panic(expected = "is not a rate unit")]
    fn rate_rejects_cost_unit() {
        Rate::new(vec![1.0], Unit::Seconds);
    }

    #[test]
    fn accessors() {
        let c = Cost::new(vec![1.0, 2.0], Unit::Joules);
        assert_eq!(c.unit(), Unit::Joules);
        assert_eq!(c.values(), &[1.0, 2.0]);
        let r = Rate::new(vec![3.0], Unit::Watts);
        assert_eq!(r.unit(), Unit::Watts);
        let ratio = Ratio::new(vec![0.5]);
        assert_eq!(ratio.values(), &[0.5]);
    }
}
