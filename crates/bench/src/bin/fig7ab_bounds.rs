//! Regenerates Figure 7(a,b): time/speedup bounds for the pi workload.

use scibench_bench::figures::fig7ab_bounds;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let reps = samples_from_env(10);
    let fig = fig7ab_bounds::compute(reps, DEFAULT_SEED).expect("figure 7ab pipeline");
    println!("{}", fig.render());
    let path = output::write_csv("fig7ab_bounds", &fig.dataset()).expect("write csv");
    println!("scaling data: {}", path.display());
}
