//! Statistically sound analysis of externally collected measurement CSVs.
//!
//! LibSciBench's workflow ends in "datasets that can be read directly with
//! established statistical tools"; this module closes the loop in the
//! other direction: bring *any* measurement CSV (one column per series)
//! and get the paper-compliant analysis — full descriptive statistics,
//! the Rule 5/6 summary with normality gating, Tukey outlier counts, and
//! (for two columns) the Rule 7/8 comparison battery.

use scibench::compare::compare_two;
use scibench::data::DataSet;
use scibench::experiment::measurement::MeasurementOutcome;
use scibench_stats::describe::describe;
use scibench_stats::error::{StatsError, StatsResult};
use scibench_stats::outlier::tukey_filter;

/// Analyzes one column: description + Rule 5/6 summary + outlier report.
pub fn analyze_column(data: &DataSet, column: &str, confidence: f64) -> StatsResult<String> {
    let xs = data
        .column(column)
        .ok_or(StatsError::InvalidGroups("no such column"))?;
    let desc = describe(&xs)?;
    let summary = MeasurementOutcome {
        name: column.to_owned(),
        warmup_samples: vec![],
        samples: xs.clone(),
        converged: true,
    }
    .summarize(confidence)?;
    let outliers = tukey_filter(&xs)?;
    let mut out = format!("column `{column}` ({} rows)\n\n", xs.len());
    out.push_str(&desc.render());
    out.push('\n');
    out.push_str(&summary.render());
    out.push_str(&format!(
        "\noutliers (Tukey 1.5 IQR): {} of {} ({:.2}%)\n",
        outliers.removed_count(),
        xs.len(),
        outliers.removed_fraction() * 100.0
    ));
    Ok(out)
}

/// Compares two columns with the full §3.2 battery (including tail
/// quantiles when the samples are large enough).
pub fn analyze_pair(
    data: &DataSet,
    column_a: &str,
    column_b: &str,
    confidence: f64,
) -> StatsResult<String> {
    let a = data
        .column(column_a)
        .ok_or(StatsError::InvalidGroups("no such column (first)"))?;
    let b = data
        .column(column_b)
        .ok_or(StatsError::InvalidGroups("no such column (second)"))?;
    // Quantile effects only when both samples can support tail CIs.
    let taus: &[f64] = if a.len() >= 200 && b.len() >= 200 {
        &[0.1, 0.5, 0.9]
    } else {
        &[]
    };
    let cmp = compare_two(column_a, &a, column_b, &b, confidence, taus, 0xC5F)?;
    let mut out = cmp.render();
    out.push_str(&format!(
        "\nverdict: medians differ {} at {:.0}% confidence\n",
        if cmp.significant() {
            "SIGNIFICANTLY"
        } else {
            "insignificantly"
        },
        confidence * 100.0
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_data() -> DataSet {
        let mut d = DataSet::new(&["fast", "slow"]);
        for i in 0..400 {
            let u = (i as f64 + 0.5) / 400.0;
            let z = scibench_stats::dist::normal::std_normal_inv_cdf(u);
            d.push_row(&[1.0 + 0.1 * z.abs(), 1.3 + 0.1 * z.abs()]);
        }
        d
    }

    #[test]
    fn single_column_analysis_renders_everything() {
        let text = analyze_column(&demo_data(), "fast", 0.95).unwrap();
        for needle in [
            "column `fast`",
            "median=",
            "skew=",
            "CI(median)",
            "outliers (Tukey",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn pair_analysis_detects_difference() {
        let text = analyze_pair(&demo_data(), "fast", "slow", 0.95).unwrap();
        assert!(text.contains("SIGNIFICANTLY"), "{text}");
        assert!(text.contains("effect size"));
        assert!(text.contains("q90"), "tail quantiles expected:\n{text}");
    }

    #[test]
    fn unknown_column_errors() {
        assert!(analyze_column(&demo_data(), "nope", 0.95).is_err());
        assert!(analyze_pair(&demo_data(), "fast", "nope", 0.95).is_err());
    }

    #[test]
    fn small_samples_skip_quantile_effects() {
        let mut d = DataSet::new(&["a", "b"]);
        for i in 0..50 {
            d.push_row(&[i as f64, i as f64 + 5.0]);
        }
        let text = analyze_pair(&d, "a", "b", 0.95).unwrap();
        assert!(!text.contains("q90"));
    }
}
