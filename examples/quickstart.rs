//! Quickstart: measure an operation with the adaptive harness, summarize
//! it per the paper's rules, and print an interpretable report.
//!
//! Run with: `cargo run --example quickstart`

use scibench::experiment::environment::{DocumentationClass, EnvironmentDoc};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench::report::ExperimentReport;
use scibench::rules::RuleAudit;
use scibench::units::Unit;
use scibench_timer::clock::WallClock;
use scibench_timer::resolution::{audit_timer, TimerProfile};
use scibench_timer::watch::Stopwatch;

/// The "application kernel" we want to benchmark: a small summation.
fn kernel(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i.wrapping_mul(2654435761));
    }
    acc
}

fn main() {
    // 1. Profile the timer first (§4.2.1: overhead < 5%, precision 10x).
    let clock = WallClock::new();
    let profile = TimerProfile::measure(&clock, 10_000);
    println!(
        "timer: resolution {:.0} ns, overhead {:.1} ns/read",
        profile.resolution_ns, profile.overhead_ns
    );

    // 2. Measure with warmup and adaptive stopping: keep sampling until
    //    the 95% CI of the median is within 1% (§4.2.2).
    let plan =
        MeasurementPlan::new("kernel(100k)")
            .warmup(10)
            .stopping(StoppingRule::AdaptiveMedianCi {
                confidence: 0.95,
                rel_error: 0.01,
                batch: 50,
                max_samples: 100_000,
            });
    let mut sink = 0u64;
    let outcome = plan
        .run(|| {
            let (elapsed, value) = Stopwatch::time_once(&clock, || kernel(100_000));
            sink = sink.wrapping_add(value);
            elapsed as f64
        })
        .expect("measurement failed");
    println!(
        "collected {} samples (converged: {})",
        outcome.samples.len(),
        outcome.converged
    );

    // Check the timer against the observed interval scale.
    let typical = outcome.samples[outcome.samples.len() / 2];
    let audit = audit_timer(&profile, typical);
    println!(
        "timer audit at ~{typical:.0} ns intervals: overhead {:.2}%, precision {:.0}x -> {}",
        audit.overhead_fraction * 100.0,
        audit.precision_ratio,
        if audit.acceptable() {
            "OK"
        } else {
            "NOT acceptable"
        }
    );

    // 3. Summarize per Rules 5 and 6 (CIs + normality diagnostics).
    let summary = outcome.summarize(0.95).expect("summary");
    println!("\n{}", summary.render());

    // 4. Wrap into a report and audit it against the twelve rules.
    let env = EnvironmentDoc::new()
        .document(
            DocumentationClass::Processor,
            &format!("{} ({})", std::env::consts::ARCH, std::env::consts::OS),
        )
        .document(DocumentationClass::Memory, "host RAM (see /proc/meminfo)")
        .not_applicable(DocumentationClass::Network, "single-process benchmark")
        .document(
            DocumentationClass::Compiler,
            "rustc, opt-level of the current profile",
        )
        .document(DocumentationClass::Runtime, "std only")
        .not_applicable(DocumentationClass::Filesystem, "no I/O")
        .document(DocumentationClass::Input, "n = 100000 summation")
        .document(
            DocumentationClass::MeasurementSetup,
            "warmup 10, adaptive stop at 1% median CI",
        )
        .document(
            DocumentationClass::CodeAvailability,
            "examples/quickstart.rs",
        );
    let report = ExperimentReport::new("quickstart kernel study")
        .environment(env)
        .entry(summary, Unit::Seconds)
        .plot("latency summary", "boxplot", None);
    println!("{}", RuleAudit::check(&report).render());
    let _ = sink;
}
