//! Chaos harness for the durability layer: a fixed demo campaign that
//! can be journaled, killed with SIGKILL mid-run, resumed, sharded
//! across supervised worker processes, and deliberately poisoned — so
//! CI can assert the central durability guarantee end-to-end:
//!
//! > an interrupted-then-resumed campaign is **bit-identical** to an
//! > uninterrupted one, and a point that crashes its worker K times is
//! > quarantined without failing the campaign.
//!
//! Subcommands:
//!
//! * `reference [--threads T]` — run the demo campaign in-process and
//!   print its canonical result digest;
//! * `run --journal <path> [--threads T] [--slow-us N]` — the journaled
//!   run (kill it at any moment; rerun to resume);
//! * `worker --shard-journal <path> --shard-points <csv> [--slow-us N]
//!   [--poison-idx I]` — the self-exec shard worker mode the supervisor
//!   spawns;
//! * `supervise --journal-dir <dir> --shards N [--slow-us N]
//!   [--poison-idx I] [--strikes K] [--heartbeat-ms H]` — supervised
//!   process-shard execution of the same campaign;
//! * `selftest` — the whole chaos dance (kill -9 + resume bit-identity,
//!   shard counts 1/2/4, supervisor kill + resume, poisoned-point
//!   quarantine) with a non-zero exit on any violation.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::Duration;

use scibench::experiment::journal::{result_digest, JournalSpec};
use scibench::experiment::{
    run_campaign_resilient, run_campaign_resilient_journaled,
    run_campaign_resilient_journaled_subset, CampaignConfig, Design, Factor, MeasureFailure,
    MeasurementPlan, ResilientCampaignResult, RetryPolicy, RunPoint, StoppingRule,
};
use scibench::parallel::shard::{
    parse_point_list, supervise_shards, ShardDurability, ShardPolicy, ShardedCampaign, WorkerSpec,
    SHARD_JOURNAL_FLAG, SHARD_POINTS_FLAG,
};
use scibench_sim::rng::SimRng;

const CHAOS_SEED: u64 = 0xC0FF_EE01;
const CODE_VERSION: &str = concat!("chaos-campaign-", env!("CARGO_PKG_VERSION"));
const CONFIG_FINGERPRINT: &str = "chaos-demo-machine-v1";

fn chaos_design() -> Design {
    Design::new(vec![
        Factor::new("op", &["latency", "bandwidth", "reduce"]),
        Factor::numeric("size", &[8.0, 64.0, 512.0, 4096.0]),
    ])
}

fn chaos_plan() -> MeasurementPlan {
    MeasurementPlan::new("chaos-op").stopping(StoppingRule::FixedCount(20))
}

fn chaos_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        seed: CHAOS_SEED,
        threads,
    }
}

/// Runtime chaos knobs shared by all subcommands.
#[derive(Debug, Clone, Copy, Default)]
struct Knobs {
    /// Real-time sleep per measure call, so a parent has a window to
    /// SIGKILL this process mid-campaign.
    slow_us: u64,
    /// Design index whose measurement calls `abort()` — a segfault-class
    /// poisoned point for the quarantine path.
    poison_idx: Option<usize>,
}

/// The demo measurement: deterministic per (seed, design index), with a
/// small injected flake rate so retries and dropped samples occur.
fn chaos_measure(knobs: Knobs) -> impl Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> {
    let index_of: HashMap<Vec<String>, usize> = chaos_design()
        .full_factorial()
        .into_iter()
        .enumerate()
        .map(|(idx, p)| (p.levels, idx))
        .collect();
    move |point, rng| {
        if knobs.slow_us > 0 {
            std::thread::sleep(Duration::from_micros(knobs.slow_us));
        }
        if knobs.poison_idx.is_some() && knobs.poison_idx == index_of.get(&point.levels).copied() {
            // A crash the in-process runner cannot contain.
            std::process::abort();
        }
        if rng.uniform() < 0.05 {
            return Err(MeasureFailure::Failed("injected flake".into()));
        }
        let base = match point.level(0) {
            "latency" => 100.0,
            "bandwidth" => 200.0,
            _ => 300.0,
        };
        let size: f64 = point.level(1).parse().expect("numeric size level");
        Ok(base + size.ln() + rng.uniform())
    }
}

fn reference_result(threads: usize) -> Result<ResilientCampaignResult, String> {
    run_campaign_resilient(
        &chaos_design(),
        &chaos_plan(),
        &chaos_config(threads),
        &RetryPolicy::default(),
        chaos_measure(Knobs::default()),
    )
    .map_err(|e| e.to_string())
}

fn spec(path: &Path) -> JournalSpec<'_> {
    JournalSpec {
        path,
        code_version: CODE_VERSION,
        config_fingerprint: CONFIG_FINGERPRINT,
    }
}

// ---------------------------------------------------------------------------
// Argument plumbing.
// ---------------------------------------------------------------------------

struct Args {
    values: HashMap<String, String>,
}

impl Args {
    fn parse(args: &[String], flags_with_value: &[&str]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if !flags_with_value.contains(&flag.as_str()) {
                return Err(format!("unknown argument {flag:?}"));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("{flag} requires a value"))?;
            values.insert(flag.clone(), value.clone());
        }
        Ok(Args { values })
    }

    fn path(&self, flag: &str) -> Result<PathBuf, String> {
        self.values
            .get(flag)
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} is required"))
    }

    fn num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {flag}: {v}")),
        }
    }

    fn knobs(&self) -> Result<Knobs, String> {
        Ok(Knobs {
            slow_us: self.num("--slow-us", 0u64)?,
            poison_idx: match self.values.get("--poison-idx") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| format!("bad --poison-idx: {v}"))?),
            },
        })
    }

    fn knob_args(&self) -> Vec<String> {
        let mut out = Vec::new();
        for flag in ["--slow-us", "--poison-idx"] {
            if let Some(v) = self.values.get(flag) {
                out.push(flag.to_owned());
                out.push(v.clone());
            }
        }
        out
    }
}

const COMMON_FLAGS: &[&str] = &["--slow-us", "--poison-idx", "--threads"];

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

fn cmd_reference(args: &Args) -> Result<(), String> {
    let threads = args.num("--threads", 1usize)?;
    let result = reference_result(threads)?;
    println!("digest={:016x}", result_digest(&result));
    println!("{}", result.health.render());
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let path = args.path("--journal")?;
    let threads = args.num("--threads", 2usize)?;
    let knobs = args.knobs()?;
    let campaign = run_campaign_resilient_journaled(
        &chaos_design(),
        &chaos_plan(),
        &chaos_config(threads),
        &RetryPolicy::default(),
        &spec(&path),
        chaos_measure(knobs),
    )
    .map_err(|e| e.to_string())?;
    println!("digest={:016x}", result_digest(&campaign.result));
    println!(
        "resumed={} executed={} torn={}",
        campaign.resume.points_resumed,
        campaign.resume.points_executed,
        campaign.resume.torn_tail_dropped
    );
    println!("{}", campaign.result.health.render());
    Ok(())
}

fn cmd_worker(args: &Args) -> Result<(), String> {
    let path = args.path(SHARD_JOURNAL_FLAG)?;
    let csv = args
        .values
        .get(SHARD_POINTS_FLAG)
        .ok_or_else(|| format!("{SHARD_POINTS_FLAG} is required"))?;
    let indices = parse_point_list(csv)?;
    let knobs = args.knobs()?;
    // One thread per worker: crash attribution needs at most one point
    // in flight per process.
    run_campaign_resilient_journaled_subset(
        &chaos_design(),
        &chaos_plan(),
        &chaos_config(1),
        &RetryPolicy::default(),
        &spec(&path),
        &indices,
        chaos_measure(knobs),
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

fn cmd_supervise(args: &Args) -> Result<(), String> {
    let dir = args.path("--journal-dir")?;
    let campaign = supervise(args, &dir)?;
    println!("digest={:016x}", result_digest(&campaign.result));
    println!(
        "spawned={} respawned={} hangs_killed={} crashes={} poisoned={:?} aborted={}",
        campaign.report.workers_spawned,
        campaign.report.workers_respawned,
        campaign.report.hangs_killed,
        campaign.report.crashes_observed,
        campaign.report.points_poisoned,
        campaign.report.shards_aborted,
    );
    println!("{}", campaign.result.health.render());
    Ok(())
}

fn supervise(args: &Args, dir: &Path) -> Result<ShardedCampaign, String> {
    let shards = args.num("--shards", 2usize)?;
    let strikes = args.num("--strikes", 3usize)?;
    let heartbeat_ms = args.num("--heartbeat-ms", 30_000u64)?;
    let program = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut worker_args = vec!["worker".to_owned()];
    worker_args.extend(args.knob_args());
    supervise_shards(
        &chaos_design(),
        &chaos_config(1),
        &ShardPolicy {
            shards,
            heartbeat_timeout_ms: heartbeat_ms,
            poll_interval_ms: 10,
            max_point_strikes: strikes,
            max_barren_crashes: 2,
        },
        &ShardDurability {
            dir,
            code_version: CODE_VERSION,
            config_fingerprint: CONFIG_FINGERPRINT,
        },
        &WorkerSpec {
            program,
            args: worker_args,
        },
    )
    .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Selftest: the full chaos dance.
// ---------------------------------------------------------------------------

fn selftest_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scibench-chaos-selftest-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create selftest dir");
    dir
}

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        println!("PASS {what}");
        Ok(())
    } else {
        Err(format!("FAIL {what}"))
    }
}

/// Spawns this binary with `args`, SIGKILLs it after `after_ms`, and
/// reports whether the kill landed before a clean exit.
fn spawn_and_kill(args: &[&str], after_ms: u64) -> Result<bool, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn: {e}"))?;
    std::thread::sleep(Duration::from_millis(after_ms));
    let still_running = child.try_wait().map_err(|e| e.to_string())?.is_none();
    child.kill().ok(); // SIGKILL on unix
    child.wait().map_err(|e| e.to_string())?;
    Ok(still_running)
}

/// Waits until every `shard-*.journal` under `dir` has stopped growing.
///
/// SIGKILLing a supervisor orphans its worker processes; they keep
/// appending to their shard journals until their subset is done. A
/// replacement supervisor must not truncate-and-reopen those files
/// while the orphans still hold them (same rule as production: one
/// supervisor incarnation per journal dir at a time).
fn wait_for_orphan_workers(dir: &Path) -> Result<(), String> {
    let lens = |dir: &Path| -> Vec<(PathBuf, u64)> {
        let mut out: Vec<(PathBuf, u64)> = std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".journal"))
            .map(|e| {
                let len = e.metadata().map(|m| m.len()).unwrap_or(0);
                (e.path(), len)
            })
            .collect();
        out.sort();
        out
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut last = lens(dir);
    loop {
        std::thread::sleep(Duration::from_millis(400));
        let now = lens(dir);
        if now == last {
            return Ok(());
        }
        if std::time::Instant::now() > deadline {
            return Err("orphaned workers still writing after 30s".into());
        }
        last = now;
    }
}

fn cmd_selftest() -> Result<(), String> {
    let reference = reference_result(1)?;
    let want = result_digest(&reference);
    println!("reference digest={want:016x}");

    // 1. kill -9 a journaled run mid-campaign, then resume: the merged
    //    result must be bit-identical to the uninterrupted reference.
    let dir = selftest_dir("kill9");
    let journal = dir.join("campaign.journal");
    let journal_str = journal.display().to_string();
    let mut killed_midway = false;
    for attempt in 0..5 {
        // ~40ms/point (20 calls x 2ms): killing after 120ms lands mid-run.
        let interrupted = spawn_and_kill(
            &["run", "--journal", &journal_str, "--slow-us", "2000"],
            120,
        )?;
        let progressed = journal.exists();
        if interrupted && progressed {
            killed_midway = true;
            break;
        }
        println!(
            "note: kill window missed (attempt {attempt}, interrupted={interrupted}, \
             journal_exists={progressed}); retrying"
        );
        let _ = std::fs::remove_file(&journal);
    }
    check(killed_midway, "SIGKILL landed mid-campaign")?;
    let resumed = run_campaign_resilient_journaled(
        &chaos_design(),
        &chaos_plan(),
        &chaos_config(2),
        &RetryPolicy::default(),
        &spec(&journal),
        chaos_measure(Knobs::default()),
    )
    .map_err(|e| e.to_string())?;
    check(
        result_digest(&resumed.result) == want,
        "kill -9 + resume is bit-identical to the uninterrupted run",
    )?;
    check(
        resumed.resume.points_executed > 0,
        "resume executed the missing points itself",
    )?;

    // 2. Sharded execution at several shard counts reproduces the same
    //    digest, each from a cold start.
    for shards in [1usize, 2, 4] {
        let dir = selftest_dir(&format!("shards-{shards}"));
        let args = Args::parse(&["--shards".to_owned(), shards.to_string()], &["--shards"])?;
        let sharded = supervise(&args, &dir)?;
        check(
            result_digest(&sharded.result) == want,
            &format!("supervised {shards}-shard campaign is bit-identical"),
        )?;
    }

    // 3. Kill -9 the *supervisor* mid-campaign; a fresh supervisor over
    //    the same journal dir finishes the job bit-identically.
    let dir = selftest_dir("supervisor-kill");
    let dir_str = dir.display().to_string();
    spawn_and_kill(
        &[
            "supervise",
            "--journal-dir",
            &dir_str,
            "--shards",
            "2",
            "--slow-us",
            "2000",
        ],
        200,
    )?;
    wait_for_orphan_workers(&dir)?;
    let args = Args::parse(&[], &[])?;
    let finished = supervise(&args, &dir)?;
    check(
        result_digest(&finished.result) == want,
        "supervisor kill + restart resumes bit-identically",
    )?;

    // 4. A poisoned point (worker abort()s on design index 3) is
    //    quarantined after K strikes without failing the campaign.
    let dir = selftest_dir("poison");
    let strikes = 2usize;
    let args = Args::parse(
        &[
            "--poison-idx".to_owned(),
            "3".to_owned(),
            "--strikes".to_owned(),
            strikes.to_string(),
        ],
        &["--poison-idx", "--strikes"],
    )?;
    let poisoned = supervise(&args, &dir)?;
    check(
        poisoned.report.points_poisoned == vec![3],
        "poisoned point quarantined",
    )?;
    check(
        poisoned.result.health.points_poisoned == 1
            && poisoned.result.health.points_completed == chaos_design().size() - 1,
        "campaign completed around the quarantined point",
    )?;
    check(
        poisoned.result.health.workers_respawned >= 1,
        "supervisor disclosed its respawns",
    )?;
    // Every non-poisoned point still matches the reference bit-for-bit.
    let mut clean_matches = true;
    for (idx, (a, b)) in poisoned.result.runs.iter().zip(&reference.runs).enumerate() {
        if idx == 3 {
            continue;
        }
        let (oa, ob) = (a.outcome.as_ref(), b.outcome.as_ref());
        let bits = |o: Option<&scibench::experiment::MeasurementOutcome>| {
            o.map(|o| o.samples.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        };
        if a.fate != b.fate || bits(oa) != bits(ob) {
            clean_matches = false;
        }
    }
    check(
        clean_matches,
        "non-poisoned points bit-identical to reference",
    )?;

    println!("selftest OK");
    Ok(())
}

// ---------------------------------------------------------------------------

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("reference") => Args::parse(&argv[1..], COMMON_FLAGS).and_then(|a| cmd_reference(&a)),
        Some("run") => {
            let flags: Vec<&str> = COMMON_FLAGS.iter().copied().chain(["--journal"]).collect();
            Args::parse(&argv[1..], &flags).and_then(|a| cmd_run(&a))
        }
        Some("worker") => {
            let flags: Vec<&str> = COMMON_FLAGS
                .iter()
                .copied()
                .chain([SHARD_JOURNAL_FLAG, SHARD_POINTS_FLAG])
                .collect();
            Args::parse(&argv[1..], &flags).and_then(|a| cmd_worker(&a))
        }
        Some("supervise") => {
            let flags: Vec<&str> = COMMON_FLAGS
                .iter()
                .copied()
                .chain(["--journal-dir", "--shards", "--strikes", "--heartbeat-ms"])
                .collect();
            Args::parse(&argv[1..], &flags).and_then(|a| cmd_supervise(&a))
        }
        Some("selftest") => cmd_selftest(),
        other => Err(format!(
            "usage: chaos_campaign <reference|run|worker|supervise|selftest> [flags], got {other:?}"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("chaos_campaign: {e}");
            ExitCode::FAILURE
        }
    }
}
