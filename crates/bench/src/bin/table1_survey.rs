//! Regenerates Table 1: the literature survey.

use scibench_bench::figures::table1;
use scibench_bench::output;

fn main() {
    let t = table1::compute();
    println!("{}", t.render());
    let path = output::write_csv("table1_scores", &t.dataset()).expect("write csv");
    println!("score distributions: {}", path.display());
    let raw = output::write_csv("table1_raw", &t.raw_dataset()).expect("write raw csv");
    println!("raw per-paper grades: {}", raw.display());
}
