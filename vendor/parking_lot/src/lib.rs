//! Offline stub of `parking_lot` (see `vendor/README.md`): a thin wrapper over
//! `std::sync` with parking_lot's panic-free `lock()` signature (poisoning is
//! ignored, matching the real crate's semantics).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutex with parking_lot's API: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Poisoning is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard. Poisoning is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}
