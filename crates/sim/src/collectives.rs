//! MPI-style collective operations over the machine model.
//!
//! Implements the algorithms whose *structure* produces the effects the
//! paper plots:
//!
//! - **Reduce** (Figures 5 and 6): fold-to-power-of-two followed by a
//!   binomial tree. Non-power-of-two process counts pay an extra message
//!   phase — the mechanism behind "several implementations perform better
//!   with 2^k processes than with 2^k + 1 processes" (§4.2).
//! - **Broadcast**: binomial tree from the root.
//! - **Barrier**: dissemination algorithm, ⌈log₂ p⌉ rounds.
//!
//! Every operation returns *per-rank completion times*: the paper's
//! Figure 6 shows exactly this per-process variation, and §4.2.1 ("Summarize
//! times across processes") prescribes ANOVA across the ranks before
//! summarizing.

use std::convert::Infallible;

use scibench_trace::{category, ArgValue, LocalTracer};

use crate::alloc::Allocation;
use crate::fault::{FaultContext, SimFault};
use crate::machine::MachineSpec;
use crate::network::NetworkModel;
use crate::rng::SimRng;

/// Unwraps a `Result` whose error type is uninhabited.
fn unwrap_infallible<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Per-rank completion times of one collective invocation, nanoseconds
/// from the (synchronized) start of the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveOutcome {
    /// `per_rank_done_ns[r]` is when rank `r` exits the operation.
    pub per_rank_done_ns: Vec<f64>,
}

impl CollectiveOutcome {
    /// Completion time of the whole operation (slowest rank), or `None`
    /// for an empty outcome (no participating ranks).
    pub fn max_ns(&self) -> Option<f64> {
        self.per_rank_done_ns.iter().cloned().reduce(f64::max)
    }

    /// Earliest rank to leave the operation, or `None` for an empty
    /// outcome.
    pub fn min_ns(&self) -> Option<f64> {
        self.per_rank_done_ns.iter().cloned().reduce(f64::min)
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.per_rank_done_ns.len()
    }
}

/// Cost of merging two partial reduction values of `bytes` payload
/// (local compute per tree merge), nanoseconds.
pub(crate) fn reduction_op_ns(bytes: usize) -> f64 {
    40.0 + bytes as f64 * 0.05
}

/// Cost for a sender to consider its part done after handing the message
/// to the NIC (it does not wait for delivery), nanoseconds.
pub(crate) fn send_exit_ns(machine: &MachineSpec) -> f64 {
    machine.network.injection_ns * 0.5
}

/// Largest power of two ≤ `p` (p ≥ 1).
pub(crate) fn pow2_floor(p: usize) -> usize {
    let mut v = 1usize;
    while v * 2 <= p {
        v *= 2;
    }
    v
}

/// Simulates one `MPI_Reduce` to root 0 with payload `bytes`.
///
/// Algorithm: ranks `[pof2, p)` first fold their value into
/// `rank − pof2`, then a binomial tree runs over the remaining power-of-two
/// group. For power-of-two `p` the fold phase is empty.
pub fn reduce(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    rng: &mut SimRng,
) -> CollectiveOutcome {
    let net = NetworkModel::new(machine);
    unwrap_infallible(reduce_impl(machine, alloc, bytes, &mut |src, dst| {
        Ok(net.transfer_ns(alloc.node_of[src], alloc.node_of[dst], bytes, rng))
    }))
}

/// [`reduce`] on a machine with injected faults: any transfer hitting a
/// crashed node or a dead link aborts the whole collective (as a real
/// `MPI_Reduce` would).
pub fn reduce_faulty(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    ctx: &mut FaultContext,
    rng: &mut SimRng,
) -> Result<CollectiveOutcome, SimFault> {
    let net = NetworkModel::new(machine);
    reduce_impl(machine, alloc, bytes, &mut |src, dst| {
        net.transfer_faulty_ns(alloc.node_of[src], alloc.node_of[dst], bytes, ctx, rng)
    })
}

/// Shared reduce algorithm over an arbitrary (possibly fallible)
/// rank-to-rank transfer function. Also the single source of truth for
/// the *message order* that [`crate::compile`] records and replays.
pub(crate) fn reduce_impl<E>(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    transfer: &mut dyn FnMut(usize, usize) -> Result<f64, E>,
) -> Result<CollectiveOutcome, E> {
    let p = alloc.ranks();
    assert!(p >= 1, "reduce requires at least one rank");
    let pof2 = pow2_floor(p);

    // ready[r]: when rank r's partial value is available for the next step.
    let mut ready = vec![0.0f64; p];
    // done[r]: when rank r exits the operation (set once).
    let mut done = vec![f64::NAN; p];

    // Fold phase for the non-power-of-two remainder. The fold renumbers
    // the communicator, so the binomial tree only starts once the whole
    // fold phase has completed — this is the extra phase that makes
    // non-power-of-two counts slower (§4.2, Figure 5).
    if pof2 < p {
        let mut fold_end = 0.0f64;
        for r in pof2..p {
            let dst = r - pof2;
            let t = transfer(r, dst)?;
            done[r] = ready[r] + send_exit_ns(machine);
            ready[dst] = ready[dst].max(ready[r] + t) + reduction_op_ns(bytes);
            fold_end = fold_end.max(ready[dst]);
        }
        for r in ready.iter_mut().take(pof2) {
            *r = r.max(fold_end);
        }
    }

    // Binomial tree over ranks [0, pof2).
    let mut mask = 1usize;
    while mask < pof2 {
        for r in 0..pof2 {
            if r & mask != 0 && done[r].is_nan() {
                // Sender: transmit to r - mask and leave.
                let dst = r - mask;
                let t = transfer(r, dst)?;
                done[r] = ready[r] + send_exit_ns(machine);
                // The receiver can merge once both its value and the
                // message are there.
                ready[dst] = ready[dst].max(ready[r] + t) + reduction_op_ns(bytes);
            }
        }
        mask <<= 1;
    }
    done[0] = ready[0];
    // Ranks that never sent (possible only when p == 1).
    for r in 0..p {
        if done[r].is_nan() {
            done[r] = ready[r];
        }
    }
    Ok(CollectiveOutcome {
        per_rank_done_ns: done,
    })
}

/// [`reduce`] with phase tracing: wraps the simulation in one
/// [`category::SIM`] `"reduce"` span and records one instant per
/// algorithmic phase — a `"fold-phase"` instant when the rank count is not
/// a power of two (the extra phase behind the paper's §4.2 observation)
/// and a `"tree-phase"` instant with the binomial-tree round count.
///
/// Tracing reads the wall clock but never touches `rng`, so the returned
/// outcome is bit-identical to plain [`reduce`] on the same rng state, and
/// the event *count* is a pure function of the rank count.
pub fn reduce_traced(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    rng: &mut SimRng,
    lane: &mut LocalTracer<'_>,
) -> CollectiveOutcome {
    let span = lane.begin();
    let p = alloc.ranks();
    let pof2 = pow2_floor(p);
    if lane.is_on() {
        if pof2 < p {
            lane.instant(
                category::SIM,
                "fold-phase",
                &[("remainder_ranks", ArgValue::U64((p - pof2) as u64))],
            );
        }
        lane.instant(
            category::SIM,
            "tree-phase",
            &[("rounds", ArgValue::U64(pof2.trailing_zeros() as u64))],
        );
    }
    let out = reduce(machine, alloc, bytes, rng);
    lane.end(
        span,
        category::SIM,
        "reduce",
        &[
            ("ranks", ArgValue::U64(p as u64)),
            ("bytes", ArgValue::U64(bytes as u64)),
            ("sim_ns", ArgValue::F64(out.max_ns().unwrap_or(0.0))),
        ],
    );
    out
}

/// Simulates one binomial-tree `MPI_Bcast` from root 0 with payload
/// `bytes`.
pub fn broadcast(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    rng: &mut SimRng,
) -> CollectiveOutcome {
    let net = NetworkModel::new(machine);
    unwrap_infallible(broadcast_impl(alloc, &mut |src, dst| {
        Ok(net.transfer_ns(alloc.node_of[src], alloc.node_of[dst], bytes, rng))
    }))
}

/// [`broadcast`] on a machine with injected faults.
pub fn broadcast_faulty(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    ctx: &mut FaultContext,
    rng: &mut SimRng,
) -> Result<CollectiveOutcome, SimFault> {
    let net = NetworkModel::new(machine);
    broadcast_impl(alloc, &mut |src, dst| {
        net.transfer_faulty_ns(alloc.node_of[src], alloc.node_of[dst], bytes, ctx, rng)
    })
}

/// Shared broadcast algorithm over an arbitrary transfer function. Also
/// the source of the message order recorded by [`crate::compile`].
pub(crate) fn broadcast_impl<E>(
    alloc: &Allocation,
    transfer: &mut dyn FnMut(usize, usize) -> Result<f64, E>,
) -> Result<CollectiveOutcome, E> {
    let p = alloc.ranks();
    assert!(p >= 1, "broadcast requires at least one rank");
    let mut have = vec![f64::NAN; p];
    have[0] = 0.0;
    // Highest power of two covering p.
    let mut mask = 1usize;
    while mask < p {
        mask <<= 1;
    }
    // Standard binomial bcast: in each round the holders send to
    // rank + mask/2 offsets.
    mask >>= 1;
    while mask > 0 {
        for r in 0..p {
            if !have[r].is_nan() && r & (mask - 1) == 0 && r & mask == 0 {
                let dst = r + mask;
                if dst < p && have[dst].is_nan() {
                    let t = transfer(r, dst)?;
                    have[dst] = have[r] + t;
                }
            }
        }
        mask >>= 1;
    }
    Ok(CollectiveOutcome {
        per_rank_done_ns: have,
    })
}

/// [`broadcast`] with phase tracing: one [`category::SIM`] `"broadcast"`
/// span plus a `"tree-phase"` instant with the round count
/// (⌈log₂ p⌉). Same determinism contract as [`reduce_traced`].
pub fn broadcast_traced(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    rng: &mut SimRng,
    lane: &mut LocalTracer<'_>,
) -> CollectiveOutcome {
    let span = lane.begin();
    let p = alloc.ranks();
    if lane.is_on() {
        let rounds = (usize::BITS - p.saturating_sub(1).leading_zeros()) as u64;
        lane.instant(
            category::SIM,
            "tree-phase",
            &[("rounds", ArgValue::U64(rounds))],
        );
    }
    let out = broadcast(machine, alloc, bytes, rng);
    lane.end(
        span,
        category::SIM,
        "broadcast",
        &[
            ("ranks", ArgValue::U64(p as u64)),
            ("bytes", ArgValue::U64(bytes as u64)),
            ("sim_ns", ArgValue::F64(out.max_ns().unwrap_or(0.0))),
        ],
    );
    out
}

/// Simulates one `MPI_Allreduce` as reduce-to-root followed by a
/// binomial-tree broadcast (the small-message algorithm of most MPI
/// implementations).
pub fn allreduce(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    rng: &mut SimRng,
) -> CollectiveOutcome {
    let red = reduce(machine, alloc, bytes, rng);
    let bcast = broadcast(machine, alloc, bytes, rng);
    combine_allreduce(red, bcast)
}

/// [`allreduce`] on a machine with injected faults: fails if either the
/// reduce or the broadcast phase hits a fault.
pub fn allreduce_faulty(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    ctx: &mut FaultContext,
    rng: &mut SimRng,
) -> Result<CollectiveOutcome, SimFault> {
    let red = reduce_faulty(machine, alloc, bytes, ctx, rng)?;
    let bcast = broadcast_faulty(machine, alloc, bytes, ctx, rng)?;
    Ok(combine_allreduce(red, bcast))
}

/// Merges the reduce and broadcast phases of an allreduce: every rank
/// finishes when the broadcast (starting at the root's reduce completion)
/// reaches it — never earlier than its own reduce participation ended.
fn combine_allreduce(red: CollectiveOutcome, bcast: CollectiveOutcome) -> CollectiveOutcome {
    let root_done = red.per_rank_done_ns[0];
    let per_rank_done_ns = red
        .per_rank_done_ns
        .iter()
        .zip(&bcast.per_rank_done_ns)
        .map(|(&r, &b)| r.max(root_done + b))
        .collect();
    CollectiveOutcome { per_rank_done_ns }
}

/// Simulates one `MPI_Gather` to root 0: every non-root rank sends its
/// `bytes` directly to the root, which receives sequentially (the linear
/// algorithm used for small communicators / large payloads).
pub fn gather(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    rng: &mut SimRng,
) -> CollectiveOutcome {
    let net = NetworkModel::new(machine);
    unwrap_infallible(gather_impl(machine, alloc, &mut |src, dst| {
        Ok(net.transfer_ns(alloc.node_of[src], alloc.node_of[dst], bytes, rng))
    }))
}

/// [`gather`] on a machine with injected faults.
pub fn gather_faulty(
    machine: &MachineSpec,
    alloc: &Allocation,
    bytes: usize,
    ctx: &mut FaultContext,
    rng: &mut SimRng,
) -> Result<CollectiveOutcome, SimFault> {
    let net = NetworkModel::new(machine);
    gather_impl(machine, alloc, &mut |src, dst| {
        net.transfer_faulty_ns(alloc.node_of[src], alloc.node_of[dst], bytes, ctx, rng)
    })
}

/// Shared gather algorithm over an arbitrary transfer function.
fn gather_impl<E>(
    machine: &MachineSpec,
    alloc: &Allocation,
    transfer: &mut dyn FnMut(usize, usize) -> Result<f64, E>,
) -> Result<CollectiveOutcome, E> {
    let p = alloc.ranks();
    assert!(p >= 1, "gather requires at least one rank");
    let mut done = vec![0.0f64; p];
    let mut root_busy_until = 0.0f64;
    for (r, done_r) in done.iter_mut().enumerate().skip(1) {
        let arrival = transfer(r, 0)?;
        *done_r = send_exit_ns(machine);
        // The root processes arrivals one at a time.
        let recv_cost = machine.network.injection_ns * 0.25;
        root_busy_until = root_busy_until.max(arrival) + recv_cost;
    }
    done[0] = root_busy_until;
    Ok(CollectiveOutcome {
        per_rank_done_ns: done,
    })
}

/// Simulates one dissemination `MPI_Barrier`.
///
/// Round k: rank r signals `(r + 2^k) mod p` and waits for the signal from
/// `(r − 2^k) mod p`; after ⌈log₂ p⌉ rounds every rank has transitively
/// heard from every other.
pub fn barrier(machine: &MachineSpec, alloc: &Allocation, rng: &mut SimRng) -> CollectiveOutcome {
    let net = NetworkModel::new(machine);
    unwrap_infallible(barrier_impl(alloc, &mut |src, dst| {
        Ok(net.transfer_ns(alloc.node_of[src], alloc.node_of[dst], 1, rng))
    }))
}

/// [`barrier`] with phase tracing: one [`category::SIM`] `"barrier"` span
/// plus a `"dissemination-phase"` instant with the round count
/// (⌈log₂ p⌉). Same determinism contract as [`reduce_traced`].
pub fn barrier_traced(
    machine: &MachineSpec,
    alloc: &Allocation,
    rng: &mut SimRng,
    lane: &mut LocalTracer<'_>,
) -> CollectiveOutcome {
    let span = lane.begin();
    let p = alloc.ranks();
    if lane.is_on() {
        let rounds = (usize::BITS - p.saturating_sub(1).leading_zeros()) as u64;
        lane.instant(
            category::SIM,
            "dissemination-phase",
            &[("rounds", ArgValue::U64(rounds))],
        );
    }
    let out = barrier(machine, alloc, rng);
    lane.end(
        span,
        category::SIM,
        "barrier",
        &[
            ("ranks", ArgValue::U64(p as u64)),
            ("sim_ns", ArgValue::F64(out.max_ns().unwrap_or(0.0))),
        ],
    );
    out
}

/// [`barrier`] on a machine with injected faults: a barrier cannot
/// complete once any participant is unreachable.
pub fn barrier_faulty(
    machine: &MachineSpec,
    alloc: &Allocation,
    ctx: &mut FaultContext,
    rng: &mut SimRng,
) -> Result<CollectiveOutcome, SimFault> {
    let net = NetworkModel::new(machine);
    barrier_impl(alloc, &mut |src, dst| {
        net.transfer_faulty_ns(alloc.node_of[src], alloc.node_of[dst], 1, ctx, rng)
    })
}

/// Shared dissemination-barrier algorithm over an arbitrary transfer
/// function. Also the source of the message order recorded by
/// [`crate::compile`].
pub(crate) fn barrier_impl<E>(
    alloc: &Allocation,
    transfer: &mut dyn FnMut(usize, usize) -> Result<f64, E>,
) -> Result<CollectiveOutcome, E> {
    let p = alloc.ranks();
    assert!(p >= 1, "barrier requires at least one rank");
    // Double-buffered rounds: every slot of `next` is overwritten each
    // round, so the two buffers can be allocated once and swapped instead
    // of allocating a fresh `next` per round.
    let mut ready = vec![0.0f64; p];
    let mut next = vec![0.0f64; p];
    let mut step = 1usize;
    while step < p {
        for r in 0..p {
            let from = (r + p - step % p) % p;
            let t = transfer(from, r)?;
            next[r] = ready[r].max(ready[from] + t);
        }
        std::mem::swap(&mut ready, &mut next);
        step <<= 1;
    }
    Ok(CollectiveOutcome {
        per_rank_done_ns: ready,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationPolicy;

    fn quiet_setup(p: usize) -> (MachineSpec, Allocation, SimRng) {
        let m = MachineSpec::test_machine(p.max(2));
        let mut rng = SimRng::new(1);
        let a = Allocation::one_rank_per_node(&m, p, AllocationPolicy::Packed, &mut rng);
        (m, a, rng)
    }

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(2), 2);
        assert_eq!(pow2_floor(3), 2);
        assert_eq!(pow2_floor(8), 8);
        assert_eq!(pow2_floor(63), 32);
        assert_eq!(pow2_floor(64), 64);
    }

    #[test]
    fn reduce_single_rank_is_instant() {
        let (m, a, mut rng) = quiet_setup(1);
        let out = reduce(&m, &a, 8, &mut rng);
        assert_eq!(out.ranks(), 1);
        assert_eq!(out.max_ns(), Some(0.0));
    }

    #[test]
    fn reduce_two_ranks_one_message() {
        let (m, a, mut rng) = quiet_setup(2);
        let out = reduce(&m, &a, 8, &mut rng);
        let net = NetworkModel::new(&m);
        let expected_root = net.base_transfer_ns(1, 0, 8) + reduction_op_ns(8);
        assert!((out.per_rank_done_ns[0] - expected_root).abs() < 1e-9);
        // The sender exits long before the root.
        assert!(out.per_rank_done_ns[1] < out.per_rank_done_ns[0]);
    }

    #[test]
    fn reduce_scales_logarithmically_on_quiet_machine() {
        // Root completion ≈ rounds · per-message: doubling p adds ~1 round.
        let times: Vec<f64> = [2usize, 4, 8, 16, 32]
            .iter()
            .map(|&p| {
                let (m, a, mut rng) = quiet_setup(p);
                reduce(&m, &a, 8, &mut rng).max_ns().unwrap()
            })
            .collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0], "{times:?}");
        }
        // Growth per doubling roughly constant (tree depth +1).
        let d1 = times[1] - times[0];
        let d3 = times[4] - times[3];
        assert!((d3 - d1).abs() < d1 * 0.5, "{times:?}");
    }

    #[test]
    fn non_power_of_two_pays_extra_phase() {
        let t8 = {
            let (m, a, mut rng) = quiet_setup(8);
            reduce(&m, &a, 8, &mut rng).max_ns().unwrap()
        };
        let t9 = {
            let (m, a, mut rng) = quiet_setup(9);
            reduce(&m, &a, 8, &mut rng).max_ns().unwrap()
        };
        let t16 = {
            let (m, a, mut rng) = quiet_setup(16);
            reduce(&m, &a, 8, &mut rng).max_ns().unwrap()
        };
        // 9 ranks must cost more than 8 — and even more than 16 (the fold
        // serializes before the tree).
        assert!(t9 > t8, "t8={t8} t9={t9}");
        assert!(t9 >= t16, "t9={t9} t16={t16}");
    }

    #[test]
    fn reduce_root_finishes_last_on_quiet_machine() {
        let (m, a, mut rng) = quiet_setup(16);
        let out = reduce(&m, &a, 8, &mut rng);
        let root = out.per_rank_done_ns[0];
        for (r, &t) in out.per_rank_done_ns.iter().enumerate().skip(1) {
            assert!(t <= root, "rank {r} finished after root: {t} > {root}");
        }
        assert_eq!(out.max_ns(), Some(root));
    }

    #[test]
    fn reduce_leaves_finish_earliest() {
        let (m, a, mut rng) = quiet_setup(8);
        let out = reduce(&m, &a, 8, &mut rng);
        // Odd ranks send in round 0 and exit immediately.
        let leaf = out.per_rank_done_ns[7];
        let inner = out.per_rank_done_ns[4]; // receives once, then sends
        assert!(leaf < inner);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (m, a, mut rng) = quiet_setup(13);
        let out = broadcast(&m, &a, 64, &mut rng);
        assert!(out.per_rank_done_ns.iter().all(|t| t.is_finite()));
        assert_eq!(out.per_rank_done_ns[0], 0.0);
        // Depth is ceil(log2 13) = 4 messages on the longest path.
        let net = NetworkModel::new(&m);
        let one_msg = net.base_transfer_ns(0, 1, 64);
        assert!(out.max_ns().unwrap() <= 4.0 * one_msg + 1e-9);
        assert!(out.max_ns().unwrap() >= one_msg);
    }

    #[test]
    fn barrier_costs_log_rounds() {
        let (m, a, mut rng) = quiet_setup(16);
        let out = barrier(&m, &a, &mut rng);
        let net = NetworkModel::new(&m);
        let one_msg = net.base_transfer_ns(0, 1, 1);
        // Dissemination: exactly 4 rounds on a quiet crossbar.
        for &t in &out.per_rank_done_ns {
            assert!((t - 4.0 * one_msg).abs() < 1e-6, "t = {t}");
        }
    }

    #[test]
    fn barrier_synchronizes_all_ranks_tightly() {
        let (m, a, mut rng) = quiet_setup(7);
        let out = barrier(&m, &a, &mut rng);
        let spread = out.max_ns().unwrap() - out.min_ns().unwrap();
        // On a quiet uniform machine all ranks leave simultaneously.
        assert!(spread < 1e-9, "spread = {spread}");
    }

    #[test]
    fn allreduce_costs_reduce_plus_broadcast() {
        let (m, a, mut rng) = quiet_setup(16);
        let all = allreduce(&m, &a, 8, &mut rng);
        let (m2, a2, mut rng2) = quiet_setup(16);
        let red = reduce(&m2, &a2, 8, &mut rng2);
        // Everyone finishes after the root's reduce time (plus bcast).
        assert!(all.min_ns().unwrap() >= red.max_ns().unwrap());
        assert_eq!(all.ranks(), 16);
        // And roughly reduce + bcast on the critical path.
        let bcast_depth = 4.0; // log2(16)
        let net = NetworkModel::new(&m);
        let one = net.base_transfer_ns(0, 1, 8);
        assert!(all.max_ns().unwrap() <= red.max_ns().unwrap() + bcast_depth * one + 1e-6);
    }

    #[test]
    fn allreduce_spread_is_bounded_by_broadcast_depth() {
        // Unlike reduce (where leaves exit after one send while the root
        // works through the whole tree), allreduce rank exits differ by
        // at most the broadcast arrival spread.
        let (m, a, mut rng) = quiet_setup(8);
        let all = allreduce(&m, &a, 8, &mut rng);
        let spread = all.max_ns().unwrap() - all.min_ns().unwrap();
        let net = NetworkModel::new(&m);
        let one = net.base_transfer_ns(0, 1, 8);
        // The root (rank 0) already holds the result when the broadcast
        // starts; the deepest leaf hears after ceil(log2 8) = 3 messages.
        assert!(spread <= 3.0 * one + 1e-9, "spread {spread}");
    }

    #[test]
    fn gather_root_serializes_receives() {
        let (m, a, mut rng) = quiet_setup(16);
        let g = gather(&m, &a, 1024, &mut rng);
        // Root pays per-sender processing: scales linearly, beyond any
        // single transfer.
        let net = NetworkModel::new(&m);
        let one = net.base_transfer_ns(1, 0, 1024);
        assert!(g.per_rank_done_ns[0] > one);
        assert!(
            g.per_rank_done_ns[0] >= 15.0 * m.network.injection_ns * 0.25,
            "root time {}",
            g.per_rank_done_ns[0]
        );
        // Senders exit immediately.
        for r in 1..16 {
            assert!(g.per_rank_done_ns[r] < one);
        }
    }

    #[test]
    fn gather_single_rank_trivial() {
        let (m, a, mut rng) = quiet_setup(1);
        let g = gather(&m, &a, 8, &mut rng);
        assert_eq!(g.per_rank_done_ns, vec![0.0]);
    }

    #[test]
    fn noisy_reduce_varies_between_runs() {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(9);
        let a = Allocation::one_rank_per_node(&m, 64, AllocationPolicy::Random, &mut rng);
        let t1 = reduce(&m, &a, 8, &mut rng).max_ns().unwrap();
        let t2 = reduce(&m, &a, 8, &mut rng).max_ns().unwrap();
        assert_ne!(t1, t2);
        // Magnitudes in the paper's Figure 5 ballpark (µs, not ms).
        assert!(t1 > 2_000.0 && t1 < 100_000.0, "t1 = {t1}");
    }

    #[test]
    fn faulty_reduce_without_faults_matches_plain() {
        use crate::fault::{FaultContext, FaultPlan};
        let m = MachineSpec::piz_daint();
        let root = SimRng::new(13);
        let mut rng_plain = root.fork("collective");
        let mut rng_faulty = root.fork("collective");
        let a = Allocation::one_rank_per_node(&m, 32, AllocationPolicy::Packed, &mut rng_plain);
        let a2 = Allocation::one_rank_per_node(&m, 32, AllocationPolicy::Packed, &mut rng_faulty);
        let plain = reduce(&m, &a, 8, &mut rng_plain);
        let mut ctx = FaultContext::new(&FaultPlan::none(), m.nodes, &root);
        let faulty = reduce_faulty(&m, &a2, 8, &mut ctx, &mut rng_faulty).unwrap();
        assert_eq!(plain, faulty);
    }

    #[test]
    fn crashed_root_fails_the_collective() {
        use crate::fault::{FaultContext, FaultPlan, SimFault};
        let (m, a, mut rng) = quiet_setup(8);
        let plan = FaultPlan {
            node_crash_prob: 1.0,
            crash_window_ns: 0.0,
            ..FaultPlan::none()
        };
        let mut ctx = FaultContext::new(&plan, m.nodes, &SimRng::new(3));
        // The crash is at t = 0, so the first transfer already fails.
        let out = reduce_faulty(&m, &a, 8, &mut ctx, &mut rng);
        assert!(matches!(out, Err(SimFault::NodeCrashed { .. })));
    }

    #[test]
    fn straggler_inflates_collective_completion() {
        use crate::fault::{FaultContext, FaultPlan};
        let (m, a, mut rng) = quiet_setup(16);
        let healthy = reduce(&m, &a, 8, &mut rng);
        let plan = FaultPlan {
            straggler_prob: 1.0,
            straggler_slowdown: 4.0,
            ..FaultPlan::none()
        };
        let (m2, a2, mut rng2) = quiet_setup(16);
        let mut ctx = FaultContext::new(&plan, m2.nodes, &SimRng::new(3));
        let slowed = reduce_faulty(&m2, &a2, 8, &mut ctx, &mut rng2).unwrap();
        assert!(
            slowed.max_ns().unwrap() > healthy.max_ns().unwrap() * 2.0,
            "healthy {} slowed {}",
            healthy.max_ns().unwrap(),
            slowed.max_ns().unwrap()
        );
    }

    #[test]
    fn all_faulty_variants_succeed_on_healthy_plan() {
        use crate::fault::{FaultContext, FaultPlan};
        let (m, a, mut rng) = quiet_setup(9);
        let root = SimRng::new(17);
        let mut ctx = FaultContext::new(&FaultPlan::none(), m.nodes, &root);
        assert!(reduce_faulty(&m, &a, 8, &mut ctx, &mut rng).is_ok());
        assert!(broadcast_faulty(&m, &a, 8, &mut ctx, &mut rng).is_ok());
        assert!(allreduce_faulty(&m, &a, 8, &mut ctx, &mut rng).is_ok());
        assert!(gather_faulty(&m, &a, 8, &mut ctx, &mut rng).is_ok());
        assert!(barrier_faulty(&m, &a, &mut ctx, &mut rng).is_ok());
    }

    #[test]
    fn traced_collectives_match_untraced_bit_for_bit() {
        use scibench_trace::Tracer;
        let m = MachineSpec::piz_daint();
        let root = SimRng::new(23);
        let mut rng_plain = root.fork("collective");
        let mut rng_traced = root.fork("collective");
        let a = Allocation::one_rank_per_node(&m, 13, AllocationPolicy::Packed, &mut rng_plain);
        let a2 = Allocation::one_rank_per_node(&m, 13, AllocationPolicy::Packed, &mut rng_traced);
        let plain = reduce(&m, &a, 8, &mut rng_plain);
        let tracer = Tracer::new();
        let mut lane = tracer.lane(0);
        let traced = reduce_traced(&m, &a2, 8, &mut rng_traced, &mut lane);
        assert_eq!(plain, traced);
        // 13 ranks: fold phase (non-power-of-two) + tree phase + span.
        lane.flush();
        let trace = tracer.drain();
        assert_eq!(trace.count(scibench_trace::category::SIM), 3);
    }

    #[test]
    fn traced_collectives_record_nothing_when_disabled() {
        use scibench_trace::Tracer;
        let (m, a, mut rng) = quiet_setup(8);
        let tracer = Tracer::disabled();
        let mut lane = tracer.lane(0);
        let out = reduce_traced(&m, &a, 8, &mut rng, &mut lane);
        let (m2, a2, mut rng2) = quiet_setup(8);
        let _ = broadcast_traced(&m2, &a2, 8, &mut rng2, &mut lane);
        let _ = barrier_traced(&m2, &a2, &mut rng2, &mut lane);
        assert_eq!(out.ranks(), 8);
        lane.flush();
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn traced_phase_counts_are_deterministic() {
        use scibench_trace::{category, Tracer};
        // Power-of-two reduce: no fold phase → exactly 2 SIM events; the
        // barrier and broadcast each add 2 (span + phase instant).
        let tracer = Tracer::new();
        {
            let (m, a, mut rng) = quiet_setup(16);
            let mut lane = tracer.lane(0);
            let _ = reduce_traced(&m, &a, 8, &mut rng, &mut lane);
            let _ = broadcast_traced(&m, &a, 8, &mut rng, &mut lane);
            let _ = barrier_traced(&m, &a, &mut rng, &mut lane);
        }
        let trace = tracer.drain();
        assert_eq!(trace.count(category::SIM), 6);
        let (spans, instants, _) = trace.kind_counts();
        assert_eq!(spans, 3);
        assert_eq!(instants, 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = MachineSpec::piz_daint();
        let run = |seed: u64| {
            let mut rng = SimRng::new(seed);
            let a = Allocation::one_rank_per_node(&m, 32, AllocationPolicy::Random, &mut rng);
            reduce(&m, &a, 8, &mut rng).per_rank_done_ns
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }
}
