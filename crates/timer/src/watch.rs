//! Interval measurement (§4.2.1 of the paper).
//!
//! [`Stopwatch`] measures single events — the paper's recommendation
//! ("we recommend measuring single events to allow the computation of
//! confidence intervals and exact ranks"). [`MultiEventTimer`] implements
//! the k-batched fallback for intervals too short for the timer
//! ("Measuring multiple events"), making the paper's trade-off explicit in
//! the API: it returns *block means*, and is clearly documented as losing
//! per-event resolution.

use crate::clock::Clock;

/// A stopwatch over an abstract clock; measures one interval at a time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: Option<u64>,
}

impl Stopwatch {
    /// Creates an idle stopwatch.
    pub fn new() -> Self {
        Self { start_ns: None }
    }

    /// Starts (or restarts) the stopwatch.
    pub fn start(&mut self, clock: &impl Clock) {
        self.start_ns = Some(clock.now_ns());
    }

    /// Stops the stopwatch and returns the elapsed nanoseconds.
    ///
    /// Returns `None` if the stopwatch was never started.
    pub fn stop(&mut self, clock: &impl Clock) -> Option<u64> {
        let start = self.start_ns.take()?;
        Some(clock.now_ns().saturating_sub(start))
    }

    /// Whether the stopwatch is currently running.
    pub fn is_running(&self) -> bool {
        self.start_ns.is_some()
    }

    /// Measures a single closure invocation in nanoseconds.
    pub fn time_once<R>(clock: &impl Clock, f: impl FnOnce() -> R) -> (u64, R) {
        let start = clock.now_ns();
        let result = f();
        let elapsed = clock.now_ns().saturating_sub(start);
        (elapsed, result)
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Busy-waits until the clock reaches `deadline_ns`, returning the
/// overshoot (how far past the deadline the wait actually ended).
///
/// This is the worker side of the paper's window-based synchronization
/// scheme (§4.2.1): after the master broadcasts a common start time,
/// "each process then waits until this time and the operation starts
/// synchronously." The overshoot is bounded by the clock's read
/// granularity plus one read's latency.
pub fn busy_wait_until(clock: &impl Clock, deadline_ns: u64) -> u64 {
    loop {
        let now = clock.now_ns();
        if now >= deadline_ns {
            return now - deadline_ns;
        }
        std::hint::spin_loop();
    }
}

/// Measures `k` executions per timed interval and reports block means.
///
/// §4.2.1: "Microbenchmarks can simply be adapted to measure multiple
/// events if the timer resolution or overhead are not sufficient. This
/// means to measure time for k executions and compute the sample mean
/// x̄ₖ = T/k and repeat this experiment n times [...] However, this loses
/// resolution in the analysis: one can no longer compute the confidence
/// interval for a single event" — which is why the result type is named
/// [`BlockMeans`] rather than pretending to be per-event samples.
#[derive(Debug, Clone, Copy)]
pub struct MultiEventTimer {
    k: usize,
}

/// Block means returned by [`MultiEventTimer`]; each entry is the mean
/// time of one block of `k` events, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeans {
    /// Events per timed block.
    pub k: usize,
    /// Mean nanoseconds per event, one entry per block.
    pub means_ns: Vec<f64>,
}

impl BlockMeans {
    /// Total number of underlying events (`k × blocks`).
    pub fn total_events(&self) -> usize {
        self.k * self.means_ns.len()
    }
}

impl MultiEventTimer {
    /// Creates a timer that batches `k ≥ 1` events per measured interval.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1) }
    }

    /// Events per block.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Runs `blocks` blocks of `k` invocations of `f`, timing each block
    /// as a single interval.
    pub fn measure(&self, clock: &impl Clock, blocks: usize, mut f: impl FnMut()) -> BlockMeans {
        let mut means = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            let start = clock.now_ns();
            for _ in 0..self.k {
                f();
            }
            let elapsed = clock.now_ns().saturating_sub(start);
            means.push(elapsed as f64 / self.k as f64);
        }
        BlockMeans {
            k: self.k,
            means_ns: means,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use parking_lot::Mutex;

    /// Shared-mutability virtual clock for closures.
    struct TestClock(Mutex<VirtualClock>);

    impl TestClock {
        fn new() -> Self {
            Self(Mutex::new(VirtualClock::new()))
        }
        fn advance(&self, ns: u64) {
            self.0.lock().advance(ns);
        }
    }

    impl Clock for TestClock {
        fn now_ns(&self) -> u64 {
            self.0.lock().now_ns()
        }
    }

    #[test]
    fn stopwatch_measures_virtual_interval() {
        let clock = TestClock::new();
        let mut sw = Stopwatch::new();
        sw.start(&clock);
        assert!(sw.is_running());
        clock.advance(1500);
        assert_eq!(sw.stop(&clock), Some(1500));
        assert!(!sw.is_running());
    }

    #[test]
    fn stop_without_start_is_none() {
        let clock = TestClock::new();
        let mut sw = Stopwatch::new();
        assert_eq!(sw.stop(&clock), None);
    }

    #[test]
    fn restart_resets_origin() {
        let clock = TestClock::new();
        let mut sw = Stopwatch::new();
        sw.start(&clock);
        clock.advance(100);
        sw.start(&clock);
        clock.advance(50);
        assert_eq!(sw.stop(&clock), Some(50));
    }

    #[test]
    fn time_once_returns_result_and_elapsed() {
        let clock = TestClock::new();
        let (elapsed, value) = Stopwatch::time_once(&clock, || {
            clock.advance(777);
            42
        });
        assert_eq!(elapsed, 777);
        assert_eq!(value, 42);
    }

    #[test]
    fn multi_event_block_means() {
        let clock = TestClock::new();
        // Each event advances 10 ns; k = 4 → block mean exactly 10.
        let timer = MultiEventTimer::new(4);
        let result = timer.measure(&clock, 5, || clock.advance(10));
        assert_eq!(result.k, 4);
        assert_eq!(result.means_ns.len(), 5);
        assert_eq!(result.total_events(), 20);
        for &m in &result.means_ns {
            assert!((m - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_event_recovers_sub_resolution_cost() {
        // The entire point of k-batching: a 10 ns event on a 100 ns-granular
        // clock is invisible per event but measurable in blocks of 100.
        let coarse = Mutex::new(VirtualClock::with_granularity(100));
        struct Coarse<'a>(&'a Mutex<VirtualClock>);
        impl Clock for Coarse<'_> {
            fn now_ns(&self) -> u64 {
                self.0.lock().now_ns()
            }
        }
        let clock = Coarse(&coarse);
        let timer = MultiEventTimer::new(100);
        let result = timer.measure(&clock, 3, || coarse.lock().advance(10));
        for &m in &result.means_ns {
            assert!((m - 10.0).abs() < 1.0, "block mean {m}");
        }
    }

    #[test]
    fn k_zero_clamped_to_one() {
        assert_eq!(MultiEventTimer::new(0).k(), 1);
    }

    #[test]
    fn busy_wait_reaches_deadline_on_wall_clock() {
        use crate::clock::WallClock;
        let clock = WallClock::new();
        let start = clock.now_ns();
        let deadline = start + 2_000_000; // 2 ms
        let overshoot = busy_wait_until(&clock, deadline);
        let now = clock.now_ns();
        assert!(now >= deadline);
        // Overshoot is tiny relative to the wait (spin granularity).
        assert!(overshoot < 1_000_000, "overshoot {overshoot} ns");
    }

    #[test]
    fn busy_wait_past_deadline_returns_immediately() {
        use crate::clock::WallClock;
        let clock = WallClock::new();
        let overshoot = busy_wait_until(&clock, 0);
        assert!(overshoot > 0); // we are already past t=0
    }

    #[test]
    fn works_with_wall_clock() {
        use crate::clock::WallClock;
        let clock = WallClock::new();
        let mut sw = Stopwatch::new();
        sw.start(&clock);
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        let elapsed = sw.stop(&clock).unwrap();
        assert!(acc > 0);
        // Just sanity: some time passed and it's below a second.
        assert!(elapsed < 1_000_000_000);
    }
}
