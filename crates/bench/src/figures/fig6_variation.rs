//! Figure 6: variation across 64 processes in `MPI_Reduce`.
//!
//! 1,000 reductions on 64 processes; one box plot per process (whiskers:
//! 1.5 IQR) of that rank's completion times. The structure: leaf ranks
//! exit after a single send, interior ranks wait through more tree
//! levels, and the ANOVA across ranks is — as the paper reports —
//! decisively significant.

use scibench::data::DataSet;
use scibench::parallel::{summarize_across_processes, ProcessAnalysis};
use scibench::plot::ascii::render_box;
use scibench::plot::boxplot::{BoxPlotStats, WhiskerRule};
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::compile::{CompiledSchedule, ReplayCtx};
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;
use scibench_stats::error::StatsResult;

/// Regenerated Figure 6 data.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-rank completion-time samples (µs): `per_rank[r][run]`.
    pub per_rank_us: Vec<Vec<f64>>,
    /// Box statistics per rank (whiskers: 1.5 IQR as in the figure).
    pub boxes: Vec<BoxPlotStats>,
    /// The Rule 10 ANOVA across ranks.
    pub analysis: ProcessAnalysis,
    /// Number of runs.
    pub runs: usize,
}

/// Runs the Figure 6 campaign: `runs` reductions on `p` processes.
pub fn compute(p: usize, runs: usize, seed: u64) -> StatsResult<Fig6> {
    let machine = MachineSpec::piz_daint();
    let mut rng = SimRng::new(seed).fork("fig6");
    let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut rng);

    // Compile the reduce once and replay it per run: the per-run loop
    // allocates nothing and draws noise in exactly the interpreter's
    // order, so the samples are bit-identical to calling `reduce` here.
    let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, 8);
    let mut ctx = ReplayCtx::with_capacity(p);
    let mut per_rank_us: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); p];
    for _ in 0..runs {
        let done = schedule.replay_into(&mut ctx, &mut rng);
        for (r, &t) in done.iter().enumerate() {
            per_rank_us[r].push(t * 1e-3);
        }
    }

    let boxes = per_rank_us
        .iter()
        .enumerate()
        .map(|(r, xs)| BoxPlotStats::from_samples(&format!("rank {r}"), xs, WhiskerRule::TukeyIqr))
        .collect::<StatsResult<Vec<_>>>()?;
    let analysis = summarize_across_processes(&per_rank_us, 0.05)?;
    Ok(Fig6 {
        per_rank_us,
        boxes,
        analysis,
        runs,
    })
}

impl Fig6 {
    /// Renders a sample of ranks as ASCII box plots plus the ANOVA
    /// verdict.
    pub fn render(&self) -> String {
        let hi = self
            .boxes
            .iter()
            .map(|b| b.five_number.max)
            .fold(0.0, f64::max);
        let mut out = format!(
            "Figure 6: Variation across {} processes in MPI_Reduce ({} runs)\n\
             (whiskers depict the 1.5 IQR)\n\n",
            self.boxes.len(),
            self.runs
        );
        // Print every 4th rank to keep the chart readable.
        for b in self.boxes.iter().step_by(4) {
            out.push_str(&render_box(b, 0.0, hi * 1.02, 70));
        }
        out.push_str(&format!(
            "\nANOVA across processes: F = {:.1} (p = {:.2e}) -> ranks {} from one population\n",
            self.analysis.anova.f,
            self.analysis.anova.p_value,
            if self.analysis.processes_differ {
                "do NOT come"
            } else {
                "come"
            },
        ));
        out.push_str(
            "Rule 10: with significantly different per-rank timings, a plain average\n\
             across all ranks would be meaningless; report per-rank data or the max.\n",
        );
        out
    }

    /// Exports per-rank box statistics as CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&[
            "rank", "min", "q1", "median", "q3", "max", "mean", "outliers",
        ])
        .with_metadata("figure", "6")
        .with_metadata("whiskers", "1.5 IQR");
        for (r, b) in self.boxes.iter().enumerate() {
            d.push_row(&[
                r as f64,
                b.five_number.min,
                b.five_number.q1,
                b.five_number.median,
                b.five_number.q3,
                b.five_number.max,
                b.mean,
                b.outliers.len() as f64,
            ]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_differ_significantly() {
        let f = compute(64, 100, 42).unwrap();
        assert!(
            f.analysis.processes_differ,
            "p = {}",
            f.analysis.anova.p_value
        );
    }

    #[test]
    fn tree_structure_visible() {
        let f = compute(64, 100, 42).unwrap();
        // Rank 0 (the root) waits through every round: its median must be
        // the largest; odd ranks (leaves) exit earliest.
        let med = |r: usize| f.boxes[r].five_number.median;
        assert!(med(0) > med(1) * 2.0, "root {} vs leaf {}", med(0), med(1));
        assert!(med(63) < med(0));
    }

    #[test]
    fn all_ranks_have_box_stats() {
        let f = compute(16, 50, 1).unwrap();
        assert_eq!(f.boxes.len(), 16);
        assert_eq!(f.per_rank_us.len(), 16);
        assert!(f.per_rank_us.iter().all(|v| v.len() == 50));
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(16, 50, 2).unwrap();
        let text = f.render();
        assert!(text.contains("1.5 IQR"));
        assert!(text.contains("ANOVA"));
        assert_eq!(f.dataset().len(), 16);
    }
}
