//! Streaming statistics end-to-end: bounded-memory million-sample
//! campaigns with bit-identical cross-thread / cross-shard merges.
//!
//! The acceptance properties under test (ISSUE):
//!
//! * a ≥ 10⁶-sample-per-point campaign runs in streaming mode with
//!   O(sketch) resident memory, and its quantiles stay within the
//!   sketch's rank-error bound of the exact answer;
//! * the campaign's keyed partials are **bit-identical** across thread
//!   counts {1, 2, 8} and shard partitions {1, 2, 4} — the disjoint key
//!   union plus canonical ascending fold removes the schedule from the
//!   result;
//! * sketch records (including NaN-bearing ones) round-trip through the
//!   crash-consistent journal bit-exactly and resume without
//!   re-measurement.

use std::path::PathBuf;

use proptest::prelude::*;

use scibench::experiment::stream::{
    merge_stream_shards, run_campaign_stream, run_campaign_stream_journaled_subset,
    run_campaign_stream_subset, run_stream,
};
use scibench::experiment::{
    CampaignConfig, Design, Factor, JournalSpec, MeasurementPlan, RunPoint, StoppingRule,
};
use scibench::parallel::shard::{collect_stream_partials, shard_assignment, shard_journal_path};
use scibench_sim::rng::SimRng;
use scibench_stats::quantile::QuantileMethod;
use scibench_stats::sketch::{KeyedPartials, MergeableSummary, StreamConfig, StreamingSummary};
use scibench_stats::sorted::SortedSamples;

const SEED: u64 = 0x57EA_0001;

fn demo_design() -> Design {
    Design::new(vec![
        Factor::new("system", &["a", "b"]),
        Factor::numeric("size", &[8.0, 64.0]),
    ])
}

/// Heavy-tailed (shifted exponential) measurement, CoV ≈ 0.9.
fn demo_measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
    let base = if point.level(0) == "a" { 0.1 } else { 0.2 };
    let u = rng.uniform().clamp(1e-12, 1.0 - 1e-12);
    base + (-u.ln())
}

fn fixed_plan(n: usize) -> MeasurementPlan {
    MeasurementPlan::new("stream-itest").stopping(StoppingRule::FixedCount(n))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scibench-stream-itest-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The headline acceptance test: one million samples on a single design
/// point, streamed into a sketch. Memory stays O(sketch) — orders of
/// magnitude below the 8 MB a sample vector would hold — and the
/// quantiles land within the digest's rank-error bound of the analytic
/// answer (Exp(1) + 0.1 shift).
#[test]
fn million_sample_point_runs_in_bounded_memory() {
    let design = Design::new(vec![Factor::new("system", &["a"])]);
    let point = &design.full_factorial()[0];
    let plan = fixed_plan(1_000_000);
    let mut rng = SimRng::new(SEED).fork_indexed("campaign-point", 0);
    let out = run_stream(&plan, &StreamConfig::default(), || {
        demo_measure(point, &mut rng)
    })
    .unwrap();
    assert_eq!(out.samples_seen(), 1_000_000);
    assert!(!out.summary.is_exact(), "must have promoted to sketch mode");
    let resident = out.summary.resident_bytes();
    assert!(
        resident < 1_000_000 * 8 / 50,
        "resident {resident} bytes is not O(sketch) for n = 10^6"
    );
    // Exp(1): q(p) = −ln(1 − p), shifted by 0.1. The t-digest's rank
    // error at δ = 200 is far below 1%, so compare against the analytic
    // quantiles at p ± 1% rank.
    for p in [0.25f64, 0.5, 0.9, 0.99] {
        let analytic = |p: f64| 0.1 - (1.0 - p).ln();
        let (lo, hi) = (
            analytic((p - 0.01).max(1e-9)),
            analytic((p + 0.01).min(1.0 - 1e-9)),
        );
        let got = out.summary.quantile(p).unwrap();
        assert!(
            lo - 0.01 <= got && got <= hi + 0.01,
            "q{p} = {got} outside [{lo}, {hi}]"
        );
    }
    let mean = out.summary.mean().unwrap();
    assert!((mean - 1.1).abs() < 0.01, "mean {mean}");
}

/// Threads {1, 2, 8} × shards {1, 2, 4}: every execution shape must
/// produce the identical partials record, whether the shards run
/// in-process ([`run_campaign_stream_subset`]) or through journals
/// ([`collect_stream_partials`]).
#[test]
fn partials_bit_identical_across_threads_and_shards() {
    let design = demo_design();
    let plan = fixed_plan(50_000);
    let stream_cfg = StreamConfig {
        threshold: 4096,
        ..StreamConfig::default()
    };
    let reference = run_campaign_stream(
        &design,
        &plan,
        &stream_cfg,
        &CampaignConfig {
            seed: SEED,
            threads: 1,
        },
        demo_measure,
    )
    .unwrap();
    let want = reference.partials.to_record();
    assert_eq!(reference.runs.len(), 4);
    for r in &reference.runs {
        assert!(!r.outcome.summary.is_exact(), "50k samples must promote");
    }

    for threads in [1usize, 2, 8] {
        let config = CampaignConfig {
            seed: SEED,
            threads,
        };
        let whole =
            run_campaign_stream(&design, &plan, &stream_cfg, &config, demo_measure).unwrap();
        assert_eq!(whole.partials.to_record(), want, "threads={threads}");

        for shards in [1usize, 2, 4] {
            // In-process sharding: strided partition, then union.
            let parts: Vec<KeyedPartials<StreamingSummary>> = (0..shards)
                .map(|s| {
                    run_campaign_stream_subset(
                        &design,
                        &plan,
                        &stream_cfg,
                        &config,
                        &shard_assignment(4, shards, s),
                        demo_measure,
                    )
                    .unwrap()
                })
                .collect();
            let merged = merge_stream_shards(&parts).unwrap();
            assert_eq!(
                merged.to_record(),
                want,
                "threads={threads} shards={shards}"
            );
            // Union order must not matter.
            let reversed: Vec<_> = parts.into_iter().rev().collect();
            let merged = merge_stream_shards(&reversed).unwrap();
            assert_eq!(merged.to_record(), want, "reversed shard merge");
        }
    }

    // Journal-mediated sharding: each shard writes sketches into its own
    // journal; the supervisor-side collector unions them bit-exactly.
    for shards in [2usize, 4] {
        let dir = tmp_dir(&format!("journal-shards-{shards}"));
        for s in 0..shards {
            let path = shard_journal_path(&dir, s);
            let spec = JournalSpec {
                path: &path,
                code_version: "itest",
                config_fingerprint: "stream",
            };
            run_campaign_stream_journaled_subset(
                &design,
                &plan,
                &stream_cfg,
                &CampaignConfig {
                    seed: SEED,
                    threads: 2,
                },
                &spec,
                &shard_assignment(4, shards, s),
                demo_measure,
            )
            .unwrap();
        }
        let collected = collect_stream_partials(&dir, shards).unwrap();
        assert_eq!(collected.to_record(), want, "journal shards={shards}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// NaN-bearing sketches survive the journal bit-exactly and resume
/// without re-measurement.
#[test]
fn nan_bearing_sketches_journal_round_trip() {
    let design = demo_design();
    let plan = fixed_plan(2_000);
    let stream_cfg = StreamConfig {
        threshold: 256,
        ..StreamConfig::default()
    };
    let config = CampaignConfig {
        seed: SEED ^ 0xff,
        threads: 2,
    };
    // Every 97th draw is non-finite: the quarantine counters must ride
    // through journal serialization with the rest of the sketch.
    let nan_measure = |point: &RunPoint, rng: &mut SimRng| {
        let x = demo_measure(point, rng);
        if ((x * 1e6) as u64).is_multiple_of(97) {
            f64::NAN
        } else {
            x
        }
    };
    let dir = tmp_dir("nan-journal");
    let path = dir.join("shard-0.journal");
    let spec = JournalSpec {
        path: &path,
        code_version: "itest",
        config_fingerprint: "stream-nan",
    };
    let all = [0usize, 1, 2, 3];
    let first = run_campaign_stream_journaled_subset(
        &design,
        &plan,
        &stream_cfg,
        &config,
        &spec,
        &all,
        nan_measure,
    )
    .unwrap();
    assert_eq!(first.points_executed, 4);
    let quarantined = first.partials.non_finite_count();
    assert!(quarantined > 0, "the contamination must actually fire");
    assert_eq!(
        first.partials.count() + quarantined,
        4 * 2_000,
        "every draw is either folded or quarantined"
    );

    let second = run_campaign_stream_journaled_subset(
        &design,
        &plan,
        &stream_cfg,
        &config,
        &spec,
        &all,
        |_: &RunPoint, _: &mut SimRng| panic!("resume must not re-measure"),
    )
    .unwrap();
    assert_eq!(second.points_resumed, 4);
    assert_eq!(second.partials.to_record(), first.partials.to_record());
    assert_eq!(second.partials.non_finite_count(), quarantined);

    // The raw wire form itself round-trips bit-exactly.
    for (_, summary) in second.partials.iter() {
        let record = summary.to_record();
        let back = StreamingSummary::from_record(&record).unwrap();
        assert_eq!(back.to_record(), record);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact-vs-sketch error bounds on heavy-tailed, contaminated
    /// distributions: quantiles stay within ±1% rank of the exact
    /// order statistics, and the moments match the exact fold.
    #[test]
    fn sketch_tracks_exact_statistics_on_contaminated_data(
        seed in 1u64..10_000,
        shape in 0.3f64..0.9,
        contamination in 0.0f64..0.05,
    ) {
        let n = 30_000usize;
        let mut rng = SimRng::new(seed).fork("contaminated");
        let xs: Vec<f64> = (0..n)
            .map(|_| {
                let u = rng.uniform().clamp(1e-12, 1.0 - 1e-12);
                let base = (1.0 - u).powf(-shape); // Pareto-like tail
                if rng.uniform() < contamination {
                    base * 1e3 // gross outliers
                } else {
                    base
                }
            })
            .collect();
        let mut summary = StreamingSummary::new(StreamConfig {
            threshold: 1024,
            ..StreamConfig::default()
        })
        .unwrap();
        for &x in &xs {
            summary.push(x);
        }
        prop_assert!(!summary.is_exact());
        let sorted = SortedSamples::new(&xs).unwrap();
        for p in [0.1f64, 0.5, 0.9, 0.99] {
            let lo = sorted
                .quantile((p - 0.01).max(0.0), QuantileMethod::Interpolated)
                .unwrap();
            let hi = sorted
                .quantile((p + 0.01).min(1.0), QuantileMethod::Interpolated)
                .unwrap();
            let got = summary.quantile(p).unwrap();
            prop_assert!(
                lo <= got && got <= hi,
                "q{} = {} outside rank window [{}, {}]",
                p, got, lo, hi
            );
        }
        // The moment side of the summary is the exact Welford fold.
        let exact_mean = xs.iter().sum::<f64>() / n as f64;
        let got_mean = summary.mean().unwrap();
        prop_assert!(
            (got_mean - exact_mean).abs() / exact_mean.abs() < 1e-9,
            "mean {} vs {}", got_mean, exact_mean
        );
        prop_assert_eq!(summary.min().unwrap().to_bits(),
            sorted.quantile(0.0, QuantileMethod::Interpolated).unwrap().to_bits());
        prop_assert_eq!(summary.max().unwrap().to_bits(),
            sorted.quantile(1.0, QuantileMethod::Interpolated).unwrap().to_bits());
    }

    /// Merge algebra: keyed unions are bit-commutative and
    /// bit-associative; direct summary merges are
    /// commutative/associative *in effect* — any merge tree over the
    /// same chunks yields quantiles within the rank-error bound.
    #[test]
    fn merges_are_order_independent(
        seed in 1u64..10_000,
        cut1 in 0.1f64..0.45,
        cut2 in 0.55f64..0.9,
    ) {
        let n = 9_000usize;
        let mut rng = SimRng::new(seed).fork("merge");
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let (a, b) = ((n as f64 * cut1) as usize, (n as f64 * cut2) as usize);
        let chunks = [&xs[..a], &xs[a..b], &xs[b..]];
        let summaries: Vec<StreamingSummary> = chunks
            .iter()
            .map(|c| {
                let mut s = StreamingSummary::new(StreamConfig {
                    threshold: 512,
                    ..StreamConfig::default()
                })
                .unwrap();
                for &x in *c {
                    s.push(x);
                }
                s
            })
            .collect();

        // Keyed union: any insertion order gives the same bits.
        let orders = [[0usize, 1, 2], [2, 1, 0], [1, 0, 2]];
        let records: Vec<String> = orders
            .iter()
            .map(|order| {
                let mut p: KeyedPartials<StreamingSummary> = KeyedPartials::new();
                for &i in order {
                    p.insert(i as u64, summaries[i].clone()).unwrap();
                }
                p.to_record()
            })
            .collect();
        prop_assert_eq!(&records[0], &records[1]);
        prop_assert_eq!(&records[0], &records[2]);

        // Direct merges: (a ⊕ b) ⊕ c versus a ⊕ (b ⊕ c) agree on the
        // count exactly and on quantiles within the rank bound.
        let mut left = summaries[0].clone();
        left.merge_from(&summaries[1]).unwrap();
        left.merge_from(&summaries[2]).unwrap();
        let mut right_tail = summaries[1].clone();
        right_tail.merge_from(&summaries[2]).unwrap();
        let mut right = summaries[0].clone();
        right.merge_from(&right_tail).unwrap();
        prop_assert_eq!(left.count(), n as u64);
        prop_assert_eq!(right.count(), n as u64);
        let sorted = SortedSamples::new(&xs).unwrap();
        for p in [0.25f64, 0.5, 0.75] {
            let lo = sorted.quantile(p - 0.02, QuantileMethod::Interpolated).unwrap();
            let hi = sorted.quantile(p + 0.02, QuantileMethod::Interpolated).unwrap();
            for (side, s) in [("left", &left), ("right", &right)] {
                let got = s.quantile(p).unwrap();
                prop_assert!(
                    lo <= got && got <= hi,
                    "{} q{} = {} outside [{}, {}]", side, p, got, lo, hi
                );
            }
        }
    }
}
