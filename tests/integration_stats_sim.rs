//! Cross-crate statistical validation: the statistics crate's machinery
//! applied to the simulator's output must reach the conclusions the
//! paper reaches about real machines.

use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::collectives::{barrier, broadcast, reduce};
use scibench_sim::drift::ClockEnsemble;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::ci::{mean_ci, median_ci};
use scibench_stats::htest::{kruskal_wallis, one_way_anova};
use scibench_stats::normality::shapiro_wilk_thinned;
use scibench_stats::outlier::tukey_filter;
use scibench_stats::quantile::{quantile, QuantileMethod};
use scibench_stats::summary::{arithmetic_mean, coefficient_of_variation};

fn dora_latencies(n: usize, seed: u64) -> Vec<f64> {
    let mut cfg = PingPongConfig::paper_64b(n);
    cfg.warmup_iterations = 0;
    pingpong_latencies_us(&MachineSpec::piz_dora(), &cfg, &mut SimRng::new(seed))
}

#[test]
fn simulated_latencies_are_non_normal_and_right_skewed() {
    let xs = dora_latencies(20_000, 1);
    // Shapiro-Wilk rejects normality decisively (Rule 6's motivation).
    let sw = shapiro_wilk_thinned(&xs, 2000).unwrap();
    assert!(
        sw.rejects_normality(0.001),
        "W = {}, p = {}",
        sw.w,
        sw.p_value
    );
    // Right skew: mean > median.
    let mean = arithmetic_mean(&xs).unwrap();
    let median = quantile(&xs, 0.5, QuantileMethod::Interpolated).unwrap();
    assert!(mean > median);
}

#[test]
fn ci_coverage_of_the_simulated_median() {
    // Frequentist check: the 95% rank CI of the median must contain the
    // long-run median in ~95% of repeated experiments.
    let truth = {
        let xs = dora_latencies(200_000, 42);
        quantile(&xs, 0.5, QuantileMethod::Interpolated).unwrap()
    };
    let mut covered = 0;
    let reps = 200;
    for i in 0..reps {
        let xs = dora_latencies(300, 1000 + i);
        let ci = median_ci(&xs, 0.95).unwrap();
        if ci.lower <= truth && truth <= ci.upper {
            covered += 1;
        }
    }
    let coverage = covered as f64 / reps as f64;
    assert!(
        (0.90..=1.0).contains(&coverage),
        "median CI coverage {coverage} (want >= 0.90)"
    );
}

#[test]
fn mean_ci_narrows_with_sqrt_n() {
    let small = mean_ci(&dora_latencies(400, 7), 0.95).unwrap();
    let large = mean_ci(&dora_latencies(6400, 7), 0.95).unwrap();
    let ratio = small.width() / large.width();
    // sqrt(16) = 4; allow generous slack for the heavy tail.
    assert!((2.0..8.0).contains(&ratio), "width ratio {ratio}");
}

#[test]
fn kruskal_wallis_separates_systems_anova_ranks() {
    let dora = dora_latencies(5_000, 3);
    let mut cfg = PingPongConfig::paper_64b(5_000);
    cfg.warmup_iterations = 0;
    let pilatus = pingpong_latencies_us(&MachineSpec::pilatus(), &cfg, &mut SimRng::new(4));
    let kw = kruskal_wallis(&[&dora, &pilatus]).unwrap();
    assert!(kw.significant_at(0.001));
    // Same system twice: no significance.
    let dora2 = dora_latencies(5_000, 5);
    let kw_null = kruskal_wallis(&[&dora, &dora2]).unwrap();
    assert!(!kw_null.significant_at(0.01), "p = {}", kw_null.p_value);
}

#[test]
fn anova_flags_reduce_rank_heterogeneity() {
    let machine = MachineSpec::piz_daint();
    let mut rng = SimRng::new(8);
    let alloc = Allocation::one_rank_per_node(&machine, 16, AllocationPolicy::Packed, &mut rng);
    let mut per_rank: Vec<Vec<f64>> = vec![Vec::new(); 16];
    for _ in 0..60 {
        let out = reduce(&machine, &alloc, 8, &mut rng);
        for (r, &t) in out.per_rank_done_ns.iter().enumerate() {
            per_rank[r].push(t);
        }
    }
    let groups: Vec<&[f64]> = per_rank.iter().map(Vec::as_slice).collect();
    let anova = one_way_anova(&groups).unwrap();
    assert!(
        anova.significant_at(0.001),
        "F = {}, p = {}",
        anova.f,
        anova.p_value
    );
}

#[test]
fn congestion_outliers_found_by_tukey() {
    let xs = dora_latencies(50_000, 9);
    let filtered = tukey_filter(&xs).unwrap();
    // Congestion spikes exist but are rare (< 5%).
    assert!(filtered.removed_count() > 0);
    assert!(
        filtered.removed_fraction() < 0.05,
        "{}",
        filtered.removed_fraction()
    );
    // All removed values sit above the upper fence (right-tail only).
    for &o in &filtered.removed {
        assert!(o > filtered.fences.upper);
    }
}

#[test]
fn cov_measures_system_stability() {
    // CoV of the quiet machine is 0; of Piz Dora small but positive.
    let quiet = {
        let machine = MachineSpec::test_machine(4);
        let mut cfg = PingPongConfig::paper_64b(500);
        cfg.node_b = 1;
        cfg.warmup_iterations = 0;
        pingpong_latencies_us(&machine, &cfg, &mut SimRng::new(1))
    };
    assert!(coefficient_of_variation(&quiet).unwrap() < 1e-12);
    let dora = dora_latencies(5_000, 10);
    let cov = coefficient_of_variation(&dora).unwrap();
    assert!((0.01..0.5).contains(&cov), "CoV {cov}");
}

#[test]
fn collectives_scale_consistently() {
    // Broadcast and barrier both scale ~log p on a quiet machine, and a
    // reduce costs at least as much as a broadcast (it also computes).
    let machine = MachineSpec::test_machine(64);
    let mut rng = SimRng::new(11);
    let mut last_bcast = 0.0;
    for p in [2usize, 4, 8, 16, 32, 64] {
        let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Packed, &mut rng);
        let b = broadcast(&machine, &alloc, 8, &mut rng).max_ns().unwrap();
        let bar = barrier(&machine, &alloc, &mut rng).max_ns().unwrap();
        let red = reduce(&machine, &alloc, 8, &mut rng).max_ns().unwrap();
        assert!(b >= last_bcast, "bcast not monotone at p={p}");
        assert!(red >= b, "reduce {red} cheaper than bcast {b} at p={p}");
        assert!(bar > 0.0);
        last_bcast = b;
    }
}

#[test]
fn window_sync_outperforms_barrier_sync_at_scale() {
    // The paper's recommendation quantified across process counts.
    let machine = MachineSpec::piz_daint();
    let root = SimRng::new(12);
    for p in [8usize, 32] {
        let mut rng = root.fork_indexed("sync", p as u64);
        let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Packed, &mut rng);
        let clocks = ClockEnsemble::sample(p, 10_000.0, 1e-6, &mut rng);
        let mut barrier_skew = 0.0;
        let mut window_skew = 0.0;
        for _ in 0..20 {
            barrier_skew +=
                scibench::sync::barrier_sync_start(&machine, &alloc, &mut rng).max_skew_ns();
            window_skew +=
                scibench::sync::window_sync_start(&machine, &alloc, &clocks, 1e6, &mut rng)
                    .max_skew_ns();
        }
        assert!(
            window_skew < barrier_skew,
            "p={p}: window {window_skew} vs barrier {barrier_skew}"
        );
    }
}

#[test]
fn allocation_policy_affects_hpl_like_workloads() {
    // Packed allocations have smaller mean hop distance than scattered —
    // the batch-system effect the paper requires documenting.
    let machine = MachineSpec::piz_daint();
    let mut rng = SimRng::new(13);
    let packed = Allocation::one_rank_per_node(&machine, 64, AllocationPolicy::Packed, &mut rng);
    let scattered = Allocation::one_rank_per_node(
        &machine,
        64,
        AllocationPolicy::Scattered { stride: 16 },
        &mut rng,
    );
    let random = Allocation::one_rank_per_node(&machine, 64, AllocationPolicy::Random, &mut rng);
    let hp = packed.mean_pairwise_hops(&machine);
    let hs = scattered.mean_pairwise_hops(&machine);
    let hr = random.mean_pairwise_hops(&machine);
    assert!(hp < hs, "packed {hp} vs scattered {hs}");
    assert!(hp < hr, "packed {hp} vs random {hr}");
}
