//! Special functions backing the probability distributions.
//!
//! Everything here is implemented from scratch: log-gamma (Lanczos),
//! complementary error function (Chebyshev fit after Numerical Recipes),
//! regularized incomplete gamma (series + continued fraction) and
//! regularized incomplete beta (Lentz continued fraction). These are the
//! only primitives needed for the normal, Student-t, χ² and F distributions
//! used by the paper's statistics.

/// Natural logarithm of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9) with absolute error below
/// 1e-13 over the positive reals.
#[allow(clippy::excessive_precision)] // reference constants kept verbatim
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Complementary error function `erfc(x)`.
///
/// Evaluated through the regularized incomplete gamma function:
/// `erfc(x) = Q(1/2, x²)` for `x ≥ 0` (and by reflection below zero),
/// which the series/continued-fraction expansions deliver to ~1e-14
/// relative accuracy — exact identities like `erfc(0) = 1` hold to the
/// last bit.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        if x > 27.0 {
            return 0.0; // underflows f64 anyway
        }
        gamma_q(0.5, x * x)
    } else {
        2.0 - erfc(-x)
    }
}

/// Error function `erf(x) = P(1/2, x²)·sign(x)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let mag = gamma_p(0.5, x * x);
    if x > 0.0 {
        mag
    } else {
        -mag
    }
}

/// Maximum iterations for the incomplete gamma/beta expansions.
const MAX_ITER: usize = 500;
/// Convergence threshold for the expansions.
const EPS: f64 = 1e-14;
/// Smallest representable ratio used to guard Lentz's algorithm.
const FPMIN: f64 = 1e-300;

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; requires `a > 0` and `x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), converges quickly for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of Q(a, x), converges quickly for x ≥ a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Requires `a > 0`, `b > 0` and `0 ≤ x ≤ 1`. Evaluated with Lentz's
/// modified continued fraction (Numerical Recipes `betai`/`betacf`).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc requires 0 <= x <= 1, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..=15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-12),
                "ln_gamma({n}) = {} want {}",
                ln_gamma(n as f64),
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(3/2) = √π / 2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        assert!(close(erf(0.0), 0.0, 1e-12));
        assert!((erf(0.5) - 0.5204998778).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.5, 1.0, 3.0, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.2, 1.0, 3.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!(gamma_p(2.0, 1e6) > 1.0 - 1e-12);
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &x in &[0.1, 0.35, 0.8] {
            let lhs = beta_inc(2.5, 1.5, x);
            let rhs = 1.0 - beta_inc(1.5, 2.5, 1.0 - x);
            assert!(close(lhs, rhs, 1e-12));
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x
        for &x in &[0.0, 0.25, 0.5, 0.99] {
            assert!(close(beta_inc(1.0, 1.0, x), x, 1e-12));
        }
    }

    #[test]
    fn beta_inc_reference_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        assert!(close(beta_inc(2.0, 2.0, 0.5), 0.5, 1e-12));
        // I_{0.25}(2, 2) = 3x^2 - 2x^3 at x=0.25 → 0.15625
        assert!(close(beta_inc(2.0, 2.0, 0.25), 0.15625, 1e-10));
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
