//! HPL-like compute-bound workload (Figure 1 of the paper).
//!
//! The paper's motivating example: 50 High-Performance Linpack runs on 64
//! nodes of Piz Daint (N = 314k, theoretical peak 94.5 Tflop/s) whose
//! completion times spread over ~20 %, with the best run at 77.38 Tflop/s
//! and the slowest at 61.23 Tflop/s.
//!
//! The model: an HPL factorization of order `n` performs `2n³/3 + 2n²`
//! flop; a run executes at `peak · efficiency` where the best-case
//! efficiency is machine-dependent and every run is degraded by the noise
//! environment (folded-lognormal slowdown plus daemon interference over a
//! minutes-long window). Each run uses a fresh batch allocation — exactly
//! how the paper ran the experiment — which contributes allocation-to-
//! allocation variance.

use serde::{Deserialize, Serialize};

use crate::alloc::{Allocation, AllocationPolicy};
use crate::machine::MachineSpec;
use crate::rng::SimRng;

/// Configuration of an HPL campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HplConfig {
    /// Matrix order N.
    pub n: u64,
    /// Number of nodes used.
    pub nodes: usize,
    /// Best-case fraction of theoretical peak the implementation reaches.
    pub best_efficiency: f64,
    /// Scale of the run-to-run folded-lognormal slowdown.
    pub slowdown_sigma: f64,
}

impl HplConfig {
    /// The paper's Figure 1 configuration: N = 314k on 64 nodes with a
    /// best observed rate of 77.38 / 94.5 ≈ 81.9 % of peak.
    pub fn paper_figure1() -> Self {
        Self {
            n: 314_000,
            nodes: 64,
            best_efficiency: 0.819,
            slowdown_sigma: 0.045,
        }
    }

    /// Total flop count of one run: `2n³/3 + 2n²`.
    pub fn flops(&self) -> f64 {
        let n = self.n as f64;
        2.0 * n * n * n / 3.0 + 2.0 * n * n
    }
}

/// Result of one simulated HPL run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HplRun {
    /// Wall-clock completion time in seconds.
    pub time_s: f64,
    /// Achieved rate in flop/s.
    pub flops_per_s: f64,
    /// Achieved fraction of theoretical peak.
    pub efficiency: f64,
    /// Mean pairwise hop distance of the allocation (spread-out
    /// allocations run slower).
    pub allocation_spread: f64,
}

/// Simulates one HPL run with a fresh random allocation.
pub fn hpl_run(machine: &MachineSpec, config: &HplConfig, rng: &mut SimRng) -> HplRun {
    let peak = config.nodes as f64 * machine.node.peak_flops;
    let best_time = config.flops() / (peak * config.best_efficiency);

    // Fresh allocation per run (§4.1.2: "For HPL we chose different
    // allocations for each experiment"). More spread-out allocations pay
    // more for the factorization's broadcasts.
    let alloc = Allocation::one_rank_per_node(machine, config.nodes, AllocationPolicy::Random, rng);
    let spread = alloc.mean_pairwise_hops(machine);
    let diameter = machine.network.topology.diameter().max(1) as f64;
    // Up to ~4 % slowdown for a maximally spread allocation.
    let alloc_factor = 1.0 + 0.04 * (spread / diameter);

    // Run-to-run system noise: folded lognormal (always a slowdown) plus
    // daemon interference accumulated over the whole run.
    let jitter = (config.slowdown_sigma * rng.std_normal().abs()).exp();
    let daemon_factor = if machine.noise.daemon_period_ns > 0.0 {
        1.0 + machine.noise.daemon_cost_ns / machine.noise.daemon_period_ns
    } else {
        1.0
    };

    let time_s = best_time * alloc_factor * jitter * daemon_factor;
    let flops_per_s = config.flops() / time_s;
    HplRun {
        time_s,
        flops_per_s,
        efficiency: flops_per_s / peak,
        allocation_spread: spread,
    }
}

/// Runs a whole campaign of `runs` HPL executions.
pub fn hpl_campaign(
    machine: &MachineSpec,
    config: &HplConfig,
    runs: usize,
    rng: &mut SimRng,
) -> Vec<HplRun> {
    (0..runs).map(|_| hpl_run(machine, config, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_formula() {
        let c = HplConfig {
            n: 1000,
            nodes: 1,
            best_efficiency: 0.8,
            slowdown_sigma: 0.0,
        };
        assert!((c.flops() - (2e9 / 3.0 + 2e6)).abs() < 1.0);
    }

    #[test]
    fn paper_config_peak() {
        let m = MachineSpec::piz_daint();
        let c = HplConfig::paper_figure1();
        let peak = c.nodes as f64 * m.node.peak_flops;
        assert!((peak - 94.5e12).abs() / 94.5e12 < 0.01);
    }

    #[test]
    fn best_run_approaches_best_efficiency() {
        let m = MachineSpec::piz_daint();
        let c = HplConfig::paper_figure1();
        let mut rng = SimRng::new(1);
        let runs = hpl_campaign(&m, &c, 200, &mut rng);
        let best = runs.iter().map(|r| r.efficiency).fold(0.0, f64::max);
        // Daemon factor costs ~0.4 %: best efficiency close below 0.819.
        assert!(best < c.best_efficiency);
        assert!(best > c.best_efficiency * 0.93, "best {best}");
    }

    #[test]
    fn figure1_campaign_statistics() {
        // Figure 1: 50 runs, times ≈ 265–340 s, ~20 % spread, right tail.
        let m = MachineSpec::piz_daint();
        let c = HplConfig::paper_figure1();
        let mut rng = SimRng::new(42);
        let runs = hpl_campaign(&m, &c, 50, &mut rng);
        assert_eq!(runs.len(), 50);
        let times: Vec<f64> = runs.iter().map(|r| r.time_s).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!((255.0..290.0).contains(&min), "min {min}");
        assert!((285.0..380.0).contains(&max), "max {max}");
        assert!(max / min > 1.05, "spread too small: {min}..{max}");
        assert!(max / min < 1.45, "spread too large: {min}..{max}");
        // Efficiencies in the paper's 61–82 % band (loose).
        for r in &runs {
            assert!((0.5..0.85).contains(&r.efficiency), "eff {}", r.efficiency);
        }
    }

    #[test]
    fn time_and_rate_are_consistent() {
        let m = MachineSpec::piz_daint();
        let c = HplConfig::paper_figure1();
        let mut rng = SimRng::new(3);
        let r = hpl_run(&m, &c, &mut rng);
        assert!((r.flops_per_s * r.time_s - c.flops()).abs() / c.flops() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = MachineSpec::piz_daint();
        let c = HplConfig::paper_figure1();
        let a = hpl_campaign(&m, &c, 10, &mut SimRng::new(9));
        let b = hpl_campaign(&m, &c, 10, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn noise_free_machine_varies_only_by_allocation() {
        let mut m = MachineSpec::piz_daint();
        m.noise = crate::noise::NoiseProfile::quiet();
        let c = HplConfig {
            slowdown_sigma: 0.0,
            ..HplConfig::paper_figure1()
        };
        let mut rng = SimRng::new(4);
        let runs = hpl_campaign(&m, &c, 20, &mut rng);
        let min = runs.iter().map(|r| r.time_s).fold(f64::INFINITY, f64::min);
        let max = runs.iter().map(|r| r.time_s).fold(0.0, f64::max);
        // Only the allocation factor (≤ 4 %) differs.
        assert!(max / min < 1.05, "{min} vs {max}");
    }
}
