//! Adaptive level refinement (§4.2): sweep the message size of a
//! simulated ping-pong with a limited measurement budget, letting the
//! SKaMPI-style refinement place measurements where the latency curve
//! bends (the eager/rendezvous protocol switch).
//!
//! Run with: `cargo run --example adaptive_sweep`

use scibench::experiment::adaptive::{refine_levels, RefinementConfig};
use scibench::plot::ascii::render_series;
use scibench::plot::series::Series;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::quantile::median;

fn main() {
    let machine = MachineSpec::piz_dora();
    let mut rng = SimRng::new(3);

    // Response function: median ping-pong latency at a message size.
    let mut measurements = 0usize;
    let mut measure = |bytes: f64| {
        measurements += 1;
        let mut cfg = PingPongConfig::paper_64b(200);
        cfg.bytes = bytes.round() as usize;
        cfg.warmup_iterations = 8;
        let lat = pingpong_latencies_us(&machine, &cfg, &mut rng);
        median(&lat[8..]).unwrap()
    };

    let config = RefinementConfig {
        min_level: 1.0,
        max_level: 65_536.0,
        rel_tolerance: 0.02,
        budget: 24,
        min_gap: 16.0,
    };
    let result = refine_levels(&config, &mut measure).expect("refinement");

    println!(
        "adaptive sweep: {} measurements, converged: {}, max interpolation error {:.2}%",
        result.measured.len(),
        result.converged,
        result.max_rel_error * 100.0
    );
    println!("\nbytes        median latency [us]");
    for m in &result.measured {
        println!("{:<12.0} {:.3}", m.level, m.value);
    }
    println!(
        "\nnote the cluster of levels around the eager threshold ({} B)",
        machine.network.eager_threshold_bytes
    );

    let pts: Vec<(f64, f64)> = result
        .measured
        .iter()
        .map(|m| (m.level.log2(), m.value))
        .collect();
    let series = Series::from_xy("median latency vs log2(bytes)", &pts, true);
    println!("{}", render_series(&[&series], 76, 14));
    let _ = measurements;
}
