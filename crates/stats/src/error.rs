//! Error type shared by all estimators in this crate.

use std::fmt;

/// Result alias used throughout `scibench-stats`.
pub type StatsResult<T> = Result<T, StatsError>;

/// Errors produced by statistical estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The sample slice was empty.
    EmptySample,
    /// The sample contained NaN or infinite values.
    NonFiniteSample,
    /// The estimator needs at least `required` observations but got `actual`.
    TooFewSamples {
        /// Minimum number of observations required.
        required: usize,
        /// Number of observations provided.
        actual: usize,
    },
    /// A sample that must be strictly positive contained a non-positive value
    /// (e.g. harmonic/geometric mean, log-normalization).
    NonPositiveSample,
    /// A probability-like parameter was outside its valid open interval.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A distribution parameter was invalid (e.g. non-positive degrees of
    /// freedom or standard deviation).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The sample has zero variance where positive variance is required
    /// (e.g. a t-test on constant data).
    ZeroVariance,
    /// The sample size is outside the supported range of an algorithm
    /// (e.g. Shapiro–Wilk supports 3 ≤ n ≤ 5000).
    UnsupportedSampleSize {
        /// Short description of the constraint that was violated.
        constraint: &'static str,
        /// Number of observations provided.
        actual: usize,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Which solver failed.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Groups passed to a k-sample test were inconsistent (e.g. fewer than
    /// two groups, or an empty group).
    InvalidGroups(&'static str),
    /// Two sketches with incompatible configurations (different grid,
    /// compression parameter or adaptive threshold) were asked to merge.
    MismatchedSketch(&'static str),
    /// A serialized sketch record could not be decoded.
    MalformedSketch(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::NonFiniteSample => write!(f, "sample contains NaN or infinite values"),
            StatsError::TooFewSamples { required, actual } => {
                write!(f, "need at least {required} samples, got {actual}")
            }
            StatsError::NonPositiveSample => {
                write!(f, "sample must be strictly positive for this estimator")
            }
            StatsError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter {name}={value} is not a valid probability in (0, 1)"
                )
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "invalid distribution parameter {name}={value}")
            }
            StatsError::ZeroVariance => write!(f, "sample variance is zero"),
            StatsError::UnsupportedSampleSize { constraint, actual } => {
                write!(f, "sample size {actual} violates constraint: {constraint}")
            }
            StatsError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            StatsError::InvalidGroups(msg) => write!(f, "invalid groups: {msg}"),
            StatsError::MismatchedSketch(msg) => {
                write!(f, "sketches are not mergeable: {msg}")
            }
            StatsError::MalformedSketch(msg) => {
                write!(f, "malformed sketch record: {msg}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::TooFewSamples {
            required: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("at least 3"));
        let e = StatsError::InvalidProbability {
            name: "alpha",
            value: 1.5,
        };
        assert!(e.to_string().contains("alpha"));
        let e = StatsError::UnsupportedSampleSize {
            constraint: "3 <= n <= 5000",
            actual: 2,
        };
        assert!(e.to_string().contains("5000"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<StatsError>();
    }
}
