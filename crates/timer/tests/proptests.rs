//! Property-based tests of the clock and counter invariants.

use proptest::prelude::*;

use parking_lot::Mutex;
use scibench_timer::clock::{Clock, VirtualClock};
use scibench_timer::counters::CounterSet;
use scibench_timer::resolution::{audit_timer, TimerProfile};
use scibench_timer::watch::MultiEventTimer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn virtual_clock_is_monotone_under_any_advances(steps in prop::collection::vec(0u64..1_000_000, 0..100)) {
        let mut c = VirtualClock::new();
        let mut last = c.now_ns();
        for s in steps {
            c.advance(s);
            let now = c.now_ns();
            prop_assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn granularity_truncation(g in 1u64..10_000, advances in prop::collection::vec(1u64..100_000, 1..50)) {
        let mut c = VirtualClock::with_granularity(g);
        let mut exact = 0u64;
        for a in advances {
            c.advance(a);
            exact += a;
            let read = c.now_ns();
            prop_assert_eq!(read % g, 0);
            prop_assert!(read <= exact);
            prop_assert!(exact - read < g);
        }
    }

    #[test]
    fn multi_event_timer_recovers_exact_cost(cost in 1u64..10_000, k in 1usize..64, blocks in 1usize..10) {
        let clock = Mutex::new(VirtualClock::new());
        struct C<'a>(&'a Mutex<VirtualClock>);
        impl Clock for C<'_> {
            fn now_ns(&self) -> u64 {
                self.0.lock().now_ns()
            }
        }
        let timer = MultiEventTimer::new(k);
        let result = timer.measure(&C(&clock), blocks, || clock.lock().advance(cost));
        prop_assert_eq!(result.means_ns.len(), blocks);
        prop_assert_eq!(result.total_events(), k * blocks);
        for &m in &result.means_ns {
            prop_assert!((m - cost as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn timer_audit_thresholds_are_sharp(overhead in 1.0f64..1e4, resolution in 1.0f64..1e4) {
        let p = TimerProfile { resolution_ns: resolution, overhead_ns: overhead, samples: 100 };
        // Just above the minimum acceptable interval: acceptable.
        let min =
            (overhead / 0.05).max(resolution * 10.0);
        prop_assert!(audit_timer(&p, min * 1.01).acceptable());
        // Well below: not acceptable.
        prop_assert!(!audit_timer(&p, min * 0.5).acceptable());
    }

    #[test]
    fn counter_deltas_match_increments(incs in prop::collection::vec((0usize..3, 1u64..1000), 0..100)) {
        let names = ["flop", "bytes", "msgs"];
        let mut c = CounterSet::new();
        c.add("flop", 5);
        let before = c.snapshot();
        let mut expected = [0u64; 3];
        for (which, amount) in incs {
            c.add(names[which], amount);
            expected[which] += amount;
        }
        let after = c.snapshot();
        let delta = before.delta(&after);
        for (i, name) in names.iter().enumerate() {
            let got = delta.get(*name).copied().unwrap_or(0);
            prop_assert_eq!(got, expected[i]);
        }
    }
}
