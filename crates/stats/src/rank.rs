//! Ranking utilities for nonparametric tests.
//!
//! Kruskal–Wallis (§3.2.2) ranks all observations across groups; ties get
//! the average of the ranks they span (mid-ranks), with the standard tie
//! correction factor.

/// Assigns 1-based mid-ranks to `xs`: ties receive the average of the ranks
/// they would occupy.
///
/// Returns a vector parallel to `xs`.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("ranks require finite values")
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie run [i, j).
        let mut j = i + 1;
        while j < n && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j averaged.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

/// Tie-correction factor for rank statistics:
/// `C = 1 − Σ (tⱼ³ − tⱼ) / (N³ − N)` over tie groups of size `tⱼ`.
///
/// Equal to 1.0 when there are no ties; used to adjust the Kruskal–Wallis H
/// statistic.
pub fn tie_correction(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ranks require finite values"));
    let mut tie_sum = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && sorted[j] == sorted[i] {
            j += 1;
        }
        let t = (j - i) as f64;
        tie_sum += t * t * t - t;
        i = j;
    }
    let nf = n as f64;
    1.0 - tie_sum / (nf * nf * nf - nf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks_without_ties() {
        let r = average_ranks(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn tied_values_get_mid_ranks() {
        // 1, 2, 2, 4 -> ranks 1, 2.5, 2.5, 4
        let r = average_ranks(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_tied() {
        let r = average_ranks(&[5.0; 4]);
        assert_eq!(r, vec![2.5; 4]);
    }

    #[test]
    fn rank_sum_is_invariant() {
        // Sum of ranks must be n(n+1)/2 regardless of ties.
        let xs = [3.0, 3.0, 1.0, 7.0, 7.0, 7.0, 2.0];
        let total: f64 = average_ranks(&xs).iter().sum();
        let n = xs.len() as f64;
        assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn tie_correction_no_ties_is_one() {
        assert_eq!(tie_correction(&[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn tie_correction_with_ties_below_one() {
        let c = tie_correction(&[1.0, 2.0, 2.0, 3.0]);
        // One tie group of 2: C = 1 - (8-2)/(64-4) = 1 - 0.1 = 0.9
        assert!((c - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tie_correction_degenerate() {
        assert_eq!(tie_correction(&[]), 1.0);
        assert_eq!(tie_correction(&[1.0]), 1.0);
    }
}
