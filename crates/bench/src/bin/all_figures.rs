//! Regenerates every table and figure in one run, writing all text
//! renditions and CSV exports into `figures/`.
//!
//! `SCIBENCH_SAMPLES` scales the ping-pong sample counts (default 1M,
//! matching the paper).

use std::fs;
use std::process::ExitCode;

use scibench_bench::figures::*;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn save(name: &str, text: &str) -> std::io::Result<()> {
    fs::create_dir_all(output::figures_dir())?;
    let path = output::figures_dir().join(format!("{name}.txt"));
    fs::write(&path, text)?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("all_figures: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let big = samples_from_env(1_000_000);
    let seed = DEFAULT_SEED;

    let f1 = fig1_hpl::compute(50, seed)?;
    save("fig1_hpl", &f1.render())?;
    output::write_csv("fig1_hpl", &f1.dataset())?;

    let t1 = table1::compute();
    save("table1_survey", &t1.render())?;
    output::write_csv("table1_scores", &t1.dataset())?;

    let f2 = fig2_normalization::compute(big, seed)?;
    save("fig2_normalization", &f2.render())?;
    output::write_csv("fig2_qq", &f2.dataset())?;

    let f3 = fig3_significance::compute(big, seed)?;
    save("fig3_significance", &f3.render())?;
    output::write_csv("fig3_significance", &f3.dataset())?;
    // The reproduction audits itself against the twelve rules.
    let audit = scibench::rules::RuleAudit::check(&f3.report());
    save("fig3_rule_audit", &audit.render())?;
    if !audit.passed() {
        return Err(format!("figure 3 report failed its own audit:\n{}", audit.render()).into());
    }

    let f4 = fig4_quantreg::compute(big, seed)?;
    save("fig4_quantile_regression", &f4.render())?;
    output::write_csv("fig4_quantreg", &f4.dataset())?;

    let f5 = fig5_reduce::compute(1_000, seed)?;
    save("fig5_reduce_scaling", &f5.render())?;
    output::write_csv("fig5_reduce", &f5.dataset())?;

    let f6 = fig6_variation::compute(64, 1_000, seed)?;
    save("fig6_process_variation", &f6.render())?;
    output::write_csv("fig6_variation", &f6.dataset())?;

    let f7ab = fig7ab_bounds::compute(10, seed)?;
    save("fig7ab_bounds", &f7ab.render())?;
    output::write_csv("fig7ab_bounds", &f7ab.dataset())?;

    let f7c = fig7c_plots::compute(big, seed)?;
    save("fig7c_plots", &f7c.render())?;
    output::write_csv("fig7c_plots", &f7c.dataset())?;

    let ex = means_example::compute()?;
    save("means_worked_example", &ex.render())?;

    println!("\nall figures regenerated (seed {seed:#x}, {big} samples for 1M-sample figures)");
    Ok(())
}
