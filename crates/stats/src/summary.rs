//! Summarizing measurement results (§3.1 of the paper).
//!
//! The paper's Rule 3: *use the arithmetic mean only for summarizing costs;
//! use the harmonic mean for summarizing rates* — and Rule 4: *avoid
//! summarizing ratios; only if the base measures are unavailable use the
//! geometric mean*. All three means plus weighted variants, online (Welford)
//! moments, standard deviation and the coefficient of variation live here.

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::validate_samples;

/// Arithmetic mean `x̄ = (1/n) Σ xᵢ`. Correct for *costs* (seconds, joules,
/// flop counts) where the total is what matters.
pub fn arithmetic_mean(xs: &[f64]) -> StatsResult<f64> {
    validate_samples(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Harmonic mean `n / Σ (1/xᵢ)`. Correct for *rates* (flop/s, MB/s) whose
/// denominator carries the primary semantic meaning.
///
/// All samples must be strictly positive.
pub fn harmonic_mean(xs: &[f64]) -> StatsResult<f64> {
    validate_samples(xs)?;
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::NonPositiveSample);
    }
    Ok(xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>())
}

/// Geometric mean `(Π xᵢ)^(1/n)`, computed in log space for stability.
///
/// Per Rule 4 this is the *last resort* for normalized (unit-less) results;
/// it equals the exponential of the log-average (§3.1.2,
/// log-normalization). All samples must be strictly positive.
pub fn geometric_mean(xs: &[f64]) -> StatsResult<f64> {
    validate_samples(xs)?;
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::NonPositiveSample);
    }
    let mean_ln = xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64;
    Ok(mean_ln.exp())
}

/// Weighted arithmetic mean `Σ wᵢxᵢ / Σ wᵢ`. Weights must be non-negative
/// with a positive sum.
pub fn weighted_arithmetic_mean(xs: &[f64], ws: &[f64]) -> StatsResult<f64> {
    validate_samples(xs)?;
    validate_samples(ws)?;
    if xs.len() != ws.len() {
        return Err(StatsError::InvalidGroups(
            "weights length differs from samples",
        ));
    }
    if ws.iter().any(|&w| w < 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "weight",
            value: -1.0,
        });
    }
    let total_w: f64 = ws.iter().sum();
    if total_w <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / total_w)
}

/// Weighted harmonic mean `Σ wᵢ / Σ (wᵢ/xᵢ)`; the correct way to average
/// rates when the measurements cover different amounts of work.
pub fn weighted_harmonic_mean(xs: &[f64], ws: &[f64]) -> StatsResult<f64> {
    validate_samples(xs)?;
    validate_samples(ws)?;
    if xs.len() != ws.len() {
        return Err(StatsError::InvalidGroups(
            "weights length differs from samples",
        ));
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::NonPositiveSample);
    }
    let total_w: f64 = ws.iter().sum();
    if total_w <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(total_w / xs.iter().zip(ws).map(|(x, w)| w / x).sum::<f64>())
}

/// Sample variance with Bessel's correction `s² = Σ(xᵢ−x̄)²/(n−1)`.
pub fn sample_variance(xs: &[f64]) -> StatsResult<f64> {
    validate_samples(xs)?;
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: xs.len(),
        });
    }
    let mean = arithmetic_mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    Ok(ss / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation `s = √s²` (§3.1.2 of the paper).
pub fn sample_std_dev(xs: &[f64]) -> StatsResult<f64> {
    Ok(sample_variance(xs)?.sqrt())
}

/// Coefficient of variation `CoV = s / x̄`, the dimensionless stability
/// metric the paper recommends for long-term performance consistency
/// (§3.1.2, citing Kramer & Ryan).
pub fn coefficient_of_variation(xs: &[f64]) -> StatsResult<f64> {
    let mean = arithmetic_mean(xs)?;
    if mean == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(sample_std_dev(xs)? / mean)
}

/// Numerically stable online (single-pass) mean/variance accumulator
/// after Welford.
///
/// §3.1.2 notes that the incremental update formulas for mean and variance
/// "can be numerically unstable and more complex stable schemes may need to
/// be employed for large numbers of samples" — Welford's algorithm is that
/// stable scheme. It is what the measurement harness uses to decide
/// adaptive stopping without storing gigabytes of raw samples.
///
/// Non-finite observations (NaN, ±∞) are **quarantined, not averaged**:
/// they are counted in [`OnlineMoments::non_finite_count`] and excluded
/// from `mean`/`m2`/`min`/`max`. Previously a NaN poisoned the mean while
/// `f64::min`/`f64::max` silently dropped it from the extrema, leaving the
/// accumulator internally inconsistent; now every statistic describes the
/// same (finite) subsample and the contamination is separately disclosed
/// (Rule 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    non_finite: u64,
}

impl Default for OnlineMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }

    /// Adds one observation. NaN and ±∞ are counted in
    /// [`OnlineMoments::non_finite_count`] and leave the moments untouched.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction of
    /// partial moments, Chan et al.). Non-finite counts add.
    pub fn merge(&mut self, other: &OnlineMoments) {
        self.non_finite += other.non_finite;
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            let non_finite = self.non_finite;
            *self = *other;
            self.non_finite = non_finite;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of finite observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of non-finite observations (NaN, ±∞) that were pushed and
    /// quarantined rather than folded into the moments.
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Total number of observations pushed, finite or not.
    pub fn total_count(&self) -> u64 {
        self.n + self.non_finite
    }

    pub(crate) fn to_raw(self) -> OnlineMomentsRaw {
        OnlineMomentsRaw {
            n: self.n,
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
            non_finite: self.non_finite,
        }
    }

    pub(crate) fn from_raw(raw: OnlineMomentsRaw) -> Self {
        Self {
            n: raw.n,
            mean: raw.mean,
            m2: raw.m2,
            min: raw.min,
            max: raw.max,
            non_finite: raw.non_finite,
        }
    }

    /// Running arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (Bessel-corrected); `None` for fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n as f64 - 1.0))
    }

    /// Sample standard deviation; `None` for fewer than 2 samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation so far; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation so far; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for OnlineMoments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = OnlineMoments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

/// Crate-internal raw view of [`OnlineMoments`] so `crate::sketch` can
/// serialize the accumulator bit-exactly without exposing mutable fields.
pub(crate) struct OnlineMomentsRaw {
    pub n: u64,
    pub mean: f64,
    pub m2: f64,
    pub min: f64,
    pub max: f64,
    pub non_finite: u64,
}

/// Crate-internal raw view of [`HigherMoments`]; see [`OnlineMomentsRaw`].
pub(crate) struct HigherMomentsRaw {
    pub n: u64,
    pub mean: f64,
    pub m2: f64,
    pub m3: f64,
    pub m4: f64,
    pub min: f64,
    pub max: f64,
    pub ln_sum: f64,
    pub recip_sum: f64,
    pub all_positive: bool,
    pub non_finite: u64,
}

/// Single-pass accumulator of the first four central moments (Pébay's
/// update formulas) plus the log- and reciprocal-sums needed for the
/// geometric and harmonic means.
///
/// This powers [`crate::describe::describe`]: one pass over the data
/// replaces the six separate passes (three means, variance, skewness,
/// kurtosis) the multi-call formulation needs.
///
/// Like [`OnlineMoments`], non-finite observations are quarantined in
/// [`HigherMoments::non_finite_count`] instead of corrupting the moments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HigherMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
    ln_sum: f64,
    recip_sum: f64,
    all_positive: bool,
    non_finite: u64,
}

impl Default for HigherMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl HigherMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ln_sum: 0.0,
            recip_sum: 0.0,
            all_positive: true,
            non_finite: 0,
        }
    }

    /// Adds one observation. NaN and ±∞ are counted in
    /// [`HigherMoments::non_finite_count`] and leave the moments untouched.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x > 0.0 {
            self.ln_sum += x.ln();
            self.recip_sum += 1.0 / x;
        } else {
            self.all_positive = false;
        }
    }

    /// Merges another accumulator into this one using Pébay's pairwise
    /// combination formulas for the third and fourth central moments —
    /// the reduction step that lets each worker keep its own
    /// `HigherMoments` and combine them at the supervisor.
    pub fn merge(&mut self, other: &HigherMoments) {
        self.non_finite += other.non_finite;
        if other.n == 0 {
            self.all_positive &= other.all_positive;
            return;
        }
        if self.n == 0 {
            let non_finite = self.non_finite;
            let all_positive = self.all_positive && other.all_positive;
            *self = *other;
            self.non_finite = non_finite;
            self.all_positive = all_positive;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let m2 = self.m2 + other.m2 + delta2 * n1 * n2 / n;
        let m3 = self.m3
            + other.m3
            + delta2 * delta * n1 * n2 * (n1 - n2) / (n * n)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta2 * delta2 * n1 * n2 * (n1 * n1 - n1 * n2 + n2 * n2) / (n * n * n)
            + 6.0 * delta2 * (n1 * n1 * other.m2 + n2 * n2 * self.m2) / (n * n)
            + 4.0 * delta * (n1 * other.m3 - n2 * self.m3) / n;
        self.mean += delta * n2 / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.ln_sum += other.ln_sum;
        self.recip_sum += other.recip_sum;
        self.all_positive &= other.all_positive;
    }

    /// Number of finite observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of non-finite observations (NaN, ±∞) quarantined so far.
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Total number of observations pushed, finite or not.
    pub fn total_count(&self) -> u64 {
        self.n + self.non_finite
    }

    pub(crate) fn to_raw(self) -> HigherMomentsRaw {
        HigherMomentsRaw {
            n: self.n,
            mean: self.mean,
            m2: self.m2,
            m3: self.m3,
            m4: self.m4,
            min: self.min,
            max: self.max,
            ln_sum: self.ln_sum,
            recip_sum: self.recip_sum,
            all_positive: self.all_positive,
            non_finite: self.non_finite,
        }
    }

    pub(crate) fn from_raw(raw: HigherMomentsRaw) -> Self {
        Self {
            n: raw.n,
            mean: raw.mean,
            m2: raw.m2,
            m3: raw.m3,
            m4: raw.m4,
            min: raw.min,
            max: raw.max,
            ln_sum: raw.ln_sum,
            recip_sum: raw.recip_sum,
            all_positive: raw.all_positive,
            non_finite: raw.non_finite,
        }
    }

    /// Running arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Geometric mean; `None` when empty or any observation was ≤ 0.
    pub fn geometric_mean(&self) -> Option<f64> {
        (self.n > 0 && self.all_positive).then(|| (self.ln_sum / self.n as f64).exp())
    }

    /// Harmonic mean; `None` when empty or any observation was ≤ 0.
    pub fn harmonic_mean(&self) -> Option<f64> {
        (self.n > 0 && self.all_positive).then(|| self.n as f64 / self.recip_sum)
    }

    /// Sample variance (Bessel-corrected); `None` for fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n as f64 - 1.0))
    }

    /// Sample standard deviation; `None` for fewer than 2 samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Biased moment skewness `g₁ = m₃/m₂^{3/2}`; `None` for n < 3 or
    /// zero variance.
    pub fn skewness(&self) -> Option<f64> {
        if self.n < 3 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        let m2 = self.m2 / n;
        let m3 = self.m3 / n;
        Some(m3 / m2.powf(1.5))
    }

    /// Biased excess kurtosis `g₂ = m₄/m₂² − 3`; `None` for n < 4 or
    /// zero variance.
    pub fn excess_kurtosis(&self) -> Option<f64> {
        if self.n < 4 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        let m2 = self.m2 / n;
        let m4 = self.m4 / n;
        Some(m4 / (m2 * m2) - 3.0)
    }

    /// Smallest observation so far; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation so far; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for HigherMoments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = HigherMoments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HPL_TIMES: [f64; 3] = [10.0, 100.0, 40.0];

    #[test]
    fn worked_hpl_example_costs() {
        // §3.1.1: arithmetic mean of (10, 100, 40) s is 50 s → 2 Gflop/s
        // for 100 Gflop runs.
        let mean = arithmetic_mean(&HPL_TIMES).unwrap();
        assert_eq!(mean, 50.0);
        assert_eq!(100.0 / mean, 2.0);
    }

    #[test]
    fn worked_hpl_example_rates() {
        // Rates are (10, 1, 2.5) Gflop/s. Arithmetic mean = 4.5 (wrong),
        // harmonic mean = 2.0 (right).
        let rates: Vec<f64> = HPL_TIMES.iter().map(|t| 100.0 / t).collect();
        assert!((arithmetic_mean(&rates).unwrap() - 4.5).abs() < 1e-12);
        assert!((harmonic_mean(&rates).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worked_hpl_example_ratios() {
        // Relative rates (1, 0.1, 0.25) vs 10 Gflop/s peak; geometric mean
        // ≈ 0.2924 → the paper's "(incorrect) efficiency of 2.9 Gflop/s".
        let ratios = [1.0, 0.1, 0.25];
        let gm = geometric_mean(&ratios).unwrap();
        assert!((gm - 0.292).abs() < 5e-3, "gm = {gm}");
    }

    #[test]
    fn mean_inequality_chain() {
        // HM <= GM <= AM for positive samples (Gwanyama).
        let xs = [2.0, 3.0, 7.0, 11.0];
        let am = arithmetic_mean(&xs).unwrap();
        let gm = geometric_mean(&xs).unwrap();
        let hm = harmonic_mean(&xs).unwrap();
        assert!(hm <= gm && gm <= am);
    }

    #[test]
    fn means_of_constant_sample_agree() {
        let xs = [4.2; 9];
        assert!((arithmetic_mean(&xs).unwrap() - 4.2).abs() < 1e-12);
        assert!((geometric_mean(&xs).unwrap() - 4.2).abs() < 1e-12);
        assert!((harmonic_mean(&xs).unwrap() - 4.2).abs() < 1e-12);
    }

    #[test]
    fn harmonic_and_geometric_reject_nonpositive() {
        assert!(matches!(
            harmonic_mean(&[1.0, 0.0]),
            Err(StatsError::NonPositiveSample)
        ));
        assert!(matches!(
            geometric_mean(&[1.0, -2.0]),
            Err(StatsError::NonPositiveSample)
        ));
    }

    #[test]
    fn weighted_arithmetic_basics() {
        let xs = [1.0, 3.0];
        assert_eq!(weighted_arithmetic_mean(&xs, &[1.0, 1.0]).unwrap(), 2.0);
        assert_eq!(weighted_arithmetic_mean(&xs, &[3.0, 1.0]).unwrap(), 1.5);
        assert!(weighted_arithmetic_mean(&xs, &[1.0]).is_err());
    }

    #[test]
    fn weighted_harmonic_equals_total_work_over_total_time() {
        // Two runs: 100 flop at 10 flop/s (10 s) and 300 flop at 30 flop/s
        // (10 s). Weighted harmonic mean by work = 400 flop / 20 s.
        let rates = [10.0, 30.0];
        let work = [100.0, 300.0];
        let whm = weighted_harmonic_mean(&rates, &work).unwrap();
        assert!((whm - 20.0).abs() < 1e-12);
    }

    #[test]
    fn variance_and_std_dev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Known example: population variance 4, sample variance 32/7.
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn cov_is_dimensionless_and_scale_invariant() {
        let xs = [10.0, 12.0, 9.0, 11.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 1000.0).collect();
        let c1 = coefficient_of_variation(&xs).unwrap();
        let c2 = coefficient_of_variation(&scaled).unwrap();
        assert!((c1 - c2).abs() < 1e-12);
    }

    #[test]
    fn online_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let m: OnlineMoments = xs.iter().copied().collect();
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - arithmetic_mean(&xs).unwrap()).abs() < 1e-12);
        assert!((m.variance().unwrap() - sample_variance(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(m.min().unwrap(), 1.0);
        assert_eq!(m.max().unwrap(), 9.0);
    }

    #[test]
    fn online_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 10.0)
            .collect();
        let whole: OnlineMoments = xs.iter().copied().collect();
        let mut left: OnlineMoments = xs[..400].iter().copied().collect();
        let right: OnlineMoments = xs[400..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-8);
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = OnlineMoments::new();
        let b: OnlineMoments = [1.0, 2.0].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: OnlineMoments = [3.0].iter().copied().collect();
        c.merge(&OnlineMoments::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn online_empty_returns_none() {
        let m = OnlineMoments::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.variance(), None);
        assert_eq!(m.min(), None);
    }

    #[test]
    fn higher_moments_match_batch_formulas() {
        let xs: Vec<f64> = (1..=500)
            .map(|i| ((i as f64 * 0.313).sin() + 2.5) * 4.0)
            .collect();
        let m: HigherMoments = xs.iter().copied().collect();
        assert_eq!(m.count(), 500);
        assert!((m.mean().unwrap() - arithmetic_mean(&xs).unwrap()).abs() < 1e-10);
        assert!((m.variance().unwrap() - sample_variance(&xs).unwrap()).abs() < 1e-8);
        assert!((m.geometric_mean().unwrap() - geometric_mean(&xs).unwrap()).abs() < 1e-10);
        assert!((m.harmonic_mean().unwrap() - harmonic_mean(&xs).unwrap()).abs() < 1e-10);
        assert_eq!(
            m.min().unwrap(),
            xs.iter().copied().fold(f64::INFINITY, f64::min)
        );
        assert_eq!(
            m.max().unwrap(),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
        // Batch third/fourth central moments for cross-checking.
        let n = xs.len() as f64;
        let mean = arithmetic_mean(&xs).unwrap();
        let m2: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let m3: f64 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        let m4: f64 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
        assert!((m.skewness().unwrap() - m3 / m2.powf(1.5)).abs() < 1e-8);
        assert!((m.excess_kurtosis().unwrap() - (m4 / (m2 * m2) - 3.0)).abs() < 1e-8);
    }

    #[test]
    fn higher_moments_degenerate_cases() {
        let empty = HigherMoments::new();
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.skewness(), None);
        let constant: HigherMoments = [5.0; 10].iter().copied().collect();
        assert_eq!(constant.skewness(), None, "zero variance");
        assert_eq!(constant.excess_kurtosis(), None);
        let with_nonpositive: HigherMoments = [1.0, -2.0, 3.0].iter().copied().collect();
        assert_eq!(with_nonpositive.geometric_mean(), None);
        assert_eq!(with_nonpositive.harmonic_mean(), None);
        assert!(with_nonpositive.mean().is_some());
        let two: HigherMoments = [1.0, 2.0].iter().copied().collect();
        assert_eq!(two.skewness(), None, "n < 3");
        let three: HigherMoments = [1.0, 2.0, 4.0].iter().copied().collect();
        assert_eq!(three.excess_kurtosis(), None, "n < 4");
        assert!(three.skewness().is_some());
    }

    #[test]
    fn online_quarantines_non_finite() {
        let mut m = OnlineMoments::new();
        m.push(1.0);
        m.push(f64::NAN);
        m.push(3.0);
        m.push(f64::INFINITY);
        m.push(f64::NEG_INFINITY);
        assert_eq!(m.count(), 2);
        assert_eq!(m.non_finite_count(), 3);
        assert_eq!(m.total_count(), 5);
        // The moments and extrema describe the finite subsample only.
        assert_eq!(m.mean(), Some(2.0));
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(3.0));
        assert!(m.variance().unwrap().is_finite());
    }

    #[test]
    fn online_first_push_nan_leaves_accumulator_empty() {
        let mut m = OnlineMoments::new();
        m.push(f64::NAN);
        assert_eq!(m.count(), 0);
        assert_eq!(m.non_finite_count(), 1);
        assert_eq!(m.mean(), None);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
        // The accumulator recovers: finite pushes after a leading NaN work.
        m.push(7.0);
        assert_eq!(m.mean(), Some(7.0));
        assert_eq!(m.min(), Some(7.0));
    }

    #[test]
    fn online_merge_adds_non_finite_counts() {
        let mut a = OnlineMoments::new();
        a.push(f64::NAN);
        let mut b = OnlineMoments::new();
        b.push(1.0);
        b.push(f64::INFINITY);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.non_finite_count(), 2);
        assert_eq!(a.mean(), Some(1.0));
        // Merging into an empty-but-contaminated accumulator keeps the
        // contamination count (regression: `*self = *other` used to drop it).
        let mut c = OnlineMoments::new();
        c.push(f64::NAN);
        let d: OnlineMoments = [2.0, 4.0].iter().copied().collect();
        c.merge(&d);
        assert_eq!(c.non_finite_count(), 1);
        assert_eq!(c.mean(), Some(3.0));
    }

    #[test]
    fn higher_moments_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..800)
            .map(|i| ((i as f64 * 0.517).sin() + 2.2) * 3.0)
            .collect();
        let whole: HigherMoments = xs.iter().copied().collect();
        // Merge three unequal partitions pairwise.
        let mut acc: HigherMoments = xs[..120].iter().copied().collect();
        let mid: HigherMoments = xs[120..500].iter().copied().collect();
        let tail: HigherMoments = xs[500..].iter().copied().collect();
        acc.merge(&mid);
        acc.merge(&tail);
        assert_eq!(acc.count(), whole.count());
        assert!((acc.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((acc.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-8);
        assert!((acc.skewness().unwrap() - whole.skewness().unwrap()).abs() < 1e-8);
        assert!((acc.excess_kurtosis().unwrap() - whole.excess_kurtosis().unwrap()).abs() < 1e-7);
        assert!((acc.geometric_mean().unwrap() - whole.geometric_mean().unwrap()).abs() < 1e-10);
        assert!((acc.harmonic_mean().unwrap() - whole.harmonic_mean().unwrap()).abs() < 1e-10);
        assert_eq!(acc.min(), whole.min());
        assert_eq!(acc.max(), whole.max());
        // Merging with empty accumulators is the identity.
        let mut e = HigherMoments::new();
        e.merge(&whole);
        assert_eq!(e.count(), whole.count());
        e.merge(&HigherMoments::new());
        assert_eq!(e.count(), whole.count());
        // Positivity tracking merges conjunctively.
        let neg: HigherMoments = [-1.0].iter().copied().collect();
        let mut pos: HigherMoments = [1.0, 2.0].iter().copied().collect();
        pos.merge(&neg);
        assert_eq!(pos.geometric_mean(), None);
    }

    #[test]
    fn higher_moments_quarantine_non_finite() {
        let mut m = HigherMoments::new();
        m.push(f64::NAN);
        m.push(2.0);
        m.push(f64::INFINITY);
        m.push(8.0);
        assert_eq!(m.count(), 2);
        assert_eq!(m.non_finite_count(), 2);
        assert_eq!(m.total_count(), 4);
        assert_eq!(m.mean(), Some(5.0));
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(8.0));
        assert!((m.geometric_mean().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn default_equals_new() {
        // The derived Default used to start min/max at 0.0 instead of the
        // ±∞ identities `new()` uses, corrupting extrema of the first push.
        assert_eq!(OnlineMoments::default(), OnlineMoments::new());
        assert_eq!(HigherMoments::default(), HigherMoments::new());
        let mut m = OnlineMoments::default();
        m.push(5.0);
        assert_eq!(m.min(), Some(5.0));
        assert_eq!(m.max(), Some(5.0));
    }

    #[test]
    fn online_is_stable_for_large_offsets() {
        // Welford must not lose precision with a huge common offset.
        let offset = 1e12;
        let m: OnlineMoments = (0..1000).map(|i| offset + (i % 10) as f64).collect();
        let var = m.variance().unwrap();
        // Variance of 0..9 repeated is ~8.258; naive sum-of-squares at 1e12
        // offset would be garbage.
        assert!((var - 8.258_258_258).abs() < 1e-3, "var = {var}");
    }
}
