//! Statistically sound comparison of two experiments (Rules 7 and 8).
//!
//! [`compare_two`] runs the full §3.2 battery on two measurement samples:
//! CI overlap, Welch t-test, Kruskal–Wallis, effect size and (optionally)
//! quantile regression across a grid of quantiles — so a report can state
//! *which* statistic supports a claimed difference instead of eyeballing
//! means.

use serde::{Deserialize, Serialize};

use scibench_stats::ci::{mean_ci, median_ci, ConfidenceInterval};
use scibench_stats::error::StatsResult;
use scibench_stats::htest::{
    cohens_d, effect_magnitude, kruskal_wallis, welch_t_test, EffectMagnitude, TestResult,
};
use scibench_stats::quantreg::{two_sample, QuantileEffect};

/// The full comparison of two samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Label of the base sample (A).
    pub label_a: String,
    /// Label of the comparison sample (B).
    pub label_b: String,
    /// CI of A's mean.
    pub mean_ci_a: ConfidenceInterval,
    /// CI of B's mean.
    pub mean_ci_b: ConfidenceInterval,
    /// CI of A's median.
    pub median_ci_a: ConfidenceInterval,
    /// CI of B's median.
    pub median_ci_b: ConfidenceInterval,
    /// Whether the mean CIs are disjoint (sufficient for significance,
    /// not necessary — §3.2).
    pub mean_cis_disjoint: bool,
    /// Whether the median CIs are disjoint.
    pub median_cis_disjoint: bool,
    /// Welch t-test on the means (requires approximate normality).
    pub t_test: TestResult,
    /// Kruskal–Wallis test on the medians (distribution-free).
    pub kruskal_wallis: TestResult,
    /// Cohen's d effect size (B − A sign convention: positive means B is
    /// larger).
    pub effect_size: f64,
    /// Magnitude bucket of the effect size.
    pub effect_magnitude: EffectMagnitude,
    /// Quantile-regression effects (present when requested).
    pub quantile_effects: Vec<QuantileEffect>,
    /// Confidence level used throughout.
    pub confidence: f64,
}

impl Comparison {
    /// Whether the difference is significant by the distribution-free
    /// test at `alpha = 1 − confidence`.
    pub fn significant(&self) -> bool {
        self.kruskal_wallis.significant_at(1.0 - self.confidence)
    }

    /// Renders an interpretable text block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} vs {} (confidence {:.0}%)\n\
             \x20 mean:   {:.6} [{:.6},{:.6}]  vs  {:.6} [{:.6},{:.6}]  disjoint: {}\n\
             \x20 median: {:.6} [{:.6},{:.6}]  vs  {:.6} [{:.6},{:.6}]  disjoint: {}\n\
             \x20 Welch t = {:.3} (p = {:.4}); Kruskal-Wallis H = {:.3} (p = {:.4})\n\
             \x20 effect size d = {:.3} ({:?})\n",
            self.label_a,
            self.label_b,
            self.confidence * 100.0,
            self.mean_ci_a.estimate,
            self.mean_ci_a.lower,
            self.mean_ci_a.upper,
            self.mean_ci_b.estimate,
            self.mean_ci_b.lower,
            self.mean_ci_b.upper,
            self.mean_cis_disjoint,
            self.median_ci_a.estimate,
            self.median_ci_a.lower,
            self.median_ci_a.upper,
            self.median_ci_b.estimate,
            self.median_ci_b.lower,
            self.median_ci_b.upper,
            self.median_cis_disjoint,
            self.t_test.statistic,
            self.t_test.p_value,
            self.kruskal_wallis.statistic,
            self.kruskal_wallis.p_value,
            self.effect_size,
            self.effect_magnitude,
        );
        if !self.quantile_effects.is_empty() {
            out.push_str("  quantile effects (B - A):\n");
            for e in &self.quantile_effects {
                out.push_str(&format!(
                    "    q{:02.0}: {:+.6} [{:+.6},{:+.6}]{}\n",
                    e.tau * 100.0,
                    e.difference.estimate,
                    e.difference.lower,
                    e.difference.upper,
                    if e.difference_significant() { " *" } else { "" }
                ));
            }
        }
        out
    }
}

/// Compares two samples with the full §3.2 battery.
///
/// `taus` selects the quantiles for quantile regression (empty = skip);
/// `seed` drives the bootstrap CIs of the quantile differences.
pub fn compare_two(
    label_a: &str,
    a: &[f64],
    label_b: &str,
    b: &[f64],
    confidence: f64,
    taus: &[f64],
    seed: u64,
) -> StatsResult<Comparison> {
    let mean_ci_a = mean_ci(a, confidence)?;
    let mean_ci_b = mean_ci(b, confidence)?;
    let median_ci_a = median_ci(a, confidence)?;
    let median_ci_b = median_ci(b, confidence)?;
    let t_test = welch_t_test(a, b)?;
    let kw = kruskal_wallis(&[a, b])?;
    let d = cohens_d(b, a)?;
    let quantile_effects = if taus.is_empty() {
        Vec::new()
    } else {
        two_sample(a, b, taus, confidence, 400, seed)?
    };
    Ok(Comparison {
        label_a: label_a.to_owned(),
        label_b: label_b.to_owned(),
        mean_cis_disjoint: mean_ci_a.disjoint_from(&mean_ci_b),
        median_cis_disjoint: median_ci_a.disjoint_from(&median_ci_b),
        mean_ci_a,
        mean_ci_b,
        median_ci_a,
        median_ci_b,
        t_test,
        kruskal_wallis: kw,
        effect_size: d,
        effect_magnitude: effect_magnitude(d),
        quantile_effects,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, mu: f64, spread: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + spread * scibench_stats::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn clearly_different_samples() {
        let a = sample(500, 10.0, 0.5);
        let b = sample(500, 11.0, 0.5);
        let c = compare_two("A", &a, "B", &b, 0.95, &[0.5], 1).unwrap();
        assert!(c.significant());
        assert!(c.mean_cis_disjoint);
        assert!(c.median_cis_disjoint);
        assert!(c.t_test.significant_at(0.01));
        assert!(c.effect_size > 1.0); // B larger
        assert_eq!(c.effect_magnitude, EffectMagnitude::Large);
        assert!(c.quantile_effects[0].difference_significant());
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = sample(300, 5.0, 1.0);
        let c = compare_two("A", &a, "A'", &a, 0.95, &[], 1).unwrap();
        assert!(!c.significant());
        assert!(!c.mean_cis_disjoint);
        assert!(c.effect_size.abs() < 1e-9);
        assert!(c.quantile_effects.is_empty());
    }

    #[test]
    fn small_shift_significant_but_small_effect() {
        // Huge n makes a tiny shift statistically significant — the
        // effect size correctly flags it as negligible (the paper's
        // argument for reporting effect sizes, §3.2.2).
        let a = sample(20_000, 10.0, 1.0);
        let b: Vec<f64> = a.iter().map(|x| x + 0.03).collect();
        let c = compare_two("A", &a, "B", &b, 0.95, &[], 2).unwrap();
        assert!(c.significant(), "p = {}", c.kruskal_wallis.p_value);
        assert_eq!(c.effect_magnitude, EffectMagnitude::Negligible);
    }

    #[test]
    fn render_contains_all_statistics() {
        let a = sample(200, 1.0, 0.1);
        let b = sample(200, 1.2, 0.1);
        let text = compare_two("dora", &a, "pilatus", &b, 0.99, &[0.25, 0.75], 3)
            .unwrap()
            .render();
        for needle in [
            "dora vs pilatus",
            "mean:",
            "median:",
            "Welch t",
            "Kruskal-Wallis",
            "effect size",
            "q25",
            "q75",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn sign_convention() {
        let a = sample(100, 2.0, 0.2);
        let b = sample(100, 1.0, 0.2);
        let c = compare_two("A", &a, "B", &b, 0.95, &[], 4).unwrap();
        assert!(c.effect_size < 0.0, "B smaller than A must give negative d");
    }
}
