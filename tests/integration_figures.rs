//! Integration tests asserting the *shape* of every regenerated paper
//! artifact: who wins, by roughly what factor, where crossovers fall.
//! Sample counts are reduced for test speed; the binaries use paper-scale
//! counts.

use scibench_bench::figures::*;

#[test]
fn figure1_hpl_distribution_shape() {
    let f = fig1_hpl::compute(50, 0x5C15).unwrap();
    // The paper's headline numbers: best 77.38 Tflop/s at 94.5 peak
    // (81.9% efficiency), slowest ~61 Tflop/s, ~20% spread.
    let best = f.tflops_at(f.min_s);
    let worst = f.tflops_at(f.max_s);
    assert!((70.0..80.0).contains(&best), "best {best}");
    assert!((50.0..75.0).contains(&worst), "worst {worst}");
    assert!(best / worst > 1.05, "spread {best}/{worst}");
    // Right-skewed completion times: mean above median.
    assert!(f.mean_s > f.median_s * 0.99);
    // Median CI available at n = 50.
    assert!(f.median_ci_s.is_some());
}

#[test]
fn table1_reproduces_every_published_aggregate() {
    let t = table1::compute();
    let text = t.render();
    // All nine design counts and four analysis counts, verbatim.
    for count in [
        "(79/95)", "(26/95)", "(60/95)", "(35/95)", "(20/95)", "(12/95)", "(48/95)", "(30/95)",
        "(7/95)", "(51/95)", "(13/95)", "(9/95)", "(17/95)",
    ] {
        assert!(text.contains(count), "missing aggregate {count}");
    }
    assert!(text.contains("39 papers report speedups"));
    assert!(text.contains("Unambiguous units: 2/95"));
}

#[test]
fn figure2_normalization_pipeline() {
    let f = fig2_normalization::compute(100_000, 0x5C15).unwrap();
    let straightness: Vec<f64> = f.panels.iter().map(|p| p.qq.straightness()).collect();
    // Original is the least straight; K=1000 among the straightest.
    assert!(straightness[0] < straightness[1]);
    assert!(straightness[0] < straightness[3]);
    assert!(f.panels[0].shapiro.rejects_normality(0.01));
    assert!(!f.panels[3].shapiro.rejects_normality(0.01));
}

#[test]
fn figure3_medians_differ_significantly() {
    let f = fig3_significance::compute(50_000, 0x5C15).unwrap();
    assert!(f.comparison.significant());
    // Pilatus has the lower min and the heavier tail; means differ by
    // roughly the paper's 0.1 us.
    assert!(f.pilatus.min < f.dora.min);
    assert!(f.pilatus.max > f.dora.max);
    let diff = f.comparison.mean_ci_b.estimate - f.comparison.mean_ci_a.estimate;
    assert!((0.02..0.3).contains(&diff), "mean diff {diff}");
    // Paper's min values: 1.57 (Dora) and 1.48 (Pilatus) us; ours within
    // 10%.
    assert!((f.dora.min - 1.57).abs() < 0.16, "dora min {}", f.dora.min);
    assert!(
        (f.pilatus.min - 1.48).abs() < 0.15,
        "pilatus min {}",
        f.pilatus.min
    );
}

#[test]
fn figure4_quantile_crossover() {
    let f = fig4_quantreg::compute(50_000, 0x5C15).unwrap();
    // Low quantiles favour Pilatus, high quantiles favour Dora; the
    // mean difference alone (a single positive number) hides this.
    assert!(f.effects.first().unwrap().difference.estimate < 0.0);
    assert!(f.effects.last().unwrap().difference.estimate > 0.0);
    assert!(f.mean_difference > 0.0);
    let tau = f.crossover_tau().expect("crossover");
    assert!((0.1..0.9).contains(&tau), "crossover at {tau}");
    // Intercept (Dora latency) grows monotonically in the quantile.
    for w in f.effects.windows(2) {
        assert!(w[1].intercept.estimate >= w[0].intercept.estimate);
    }
}

#[test]
fn figure5_power_of_two_effect() {
    let f = fig5_reduce::compute(100, 0x5C15).unwrap();
    // Every power of two in 4..=32 beats its successor p+1.
    for &p in &[4usize, 8, 16, 32] {
        let median = |q: usize| {
            f.points
                .iter()
                .find(|pt| pt.p == q)
                .map(|pt| pt.summary.median)
                .unwrap()
        };
        assert!(median(p) < median(p + 1), "p={p}");
    }
    // Scaling is logarithmic-ish: 64 procs cost far less than 32x the
    // 2-proc time.
    let m2 = f.points.first().unwrap().summary.median;
    let m64 = f.points.last().unwrap().summary.median;
    assert!(m64 < m2 * 16.0, "{m2} vs {m64}");
    assert!(m64 > m2 * 1.5);
}

#[test]
fn figure6_process_variation() {
    let f = fig6_variation::compute(64, 150, 0x5C15).unwrap();
    // The ANOVA across ranks is decisive.
    assert!(f.analysis.processes_differ);
    assert!(f.analysis.anova.p_value < 1e-6);
    // Root (rank 0) slowest, some leaf much faster.
    let med0 = f.boxes[0].five_number.median;
    let fastest = f
        .boxes
        .iter()
        .map(|b| b.five_number.median)
        .fold(f64::INFINITY, f64::min);
    assert!(med0 > fastest * 2.0, "root {med0} vs fastest {fastest}");
}

#[test]
fn figure7ab_bounds_hierarchy() {
    let f = fig7ab_bounds::compute(10, 0x5C15).unwrap();
    assert!(f.cis_within_5pct, "caption criterion violated");
    // Bounds order: ideal <= amdahl <= parallel-overhead <= measured.
    for m in &f.measured {
        let ideal = f.bounds[0].time_bound_s(f.bound_base_s, m.p);
        let amdahl = f.bounds[1].time_bound_s(f.bound_base_s, m.p);
        let parovh = f.bounds[2].time_bound_s(f.bound_base_s, m.p);
        assert!(ideal <= amdahl + 1e-12);
        assert!(amdahl <= parovh + 1e-12);
        assert!(m.time_ci.estimate >= parovh * 0.999, "p = {}", m.p);
    }
    // "The parallel overhead bounds model explains nearly all the scaling
    // observed": within 10% at every p.
    for m in &f.measured {
        let parovh = f.bounds[2].time_bound_s(f.bound_base_s, m.p);
        let gap = (m.time_ci.estimate - parovh) / m.time_ci.estimate;
        assert!(gap < 0.10, "p = {}: unexplained gap {gap}", m.p);
    }
}

#[test]
fn figure7c_plot_statistics() {
    let f = fig7c_plots::compute(50_000, 0x5C15).unwrap();
    let b = &f.boxplot;
    assert!(b.five_number.q1 < b.five_number.median);
    assert!(b.five_number.median < b.five_number.q3);
    assert!(
        !b.outliers.is_empty(),
        "latency tails must produce IQR outliers"
    );
    // Violin carries both means; arithmetic >= geometric.
    assert!(f.violin.geometric_mean.unwrap() <= f.violin.mean);
    // Median CI well inside the IQR.
    assert!(f.median_ci.lower >= b.five_number.q1);
    assert!(f.median_ci.upper <= b.five_number.q3);
}

#[test]
fn means_example_matches_paper() {
    let e = means_example::compute().unwrap();
    assert_eq!(e.mean_time_s, 50.0);
    assert_eq!(e.correct_rate, 2.0);
    assert!((e.misleading_arith_rate - 4.5).abs() < 1e-12);
    assert!((e.misleading_geo_rate - 2.9).abs() < 0.05);
}

#[test]
fn figures_are_reproducible_bit_for_bit() {
    let a = fig1_hpl::compute(20, 7).unwrap();
    let b = fig1_hpl::compute(20, 7).unwrap();
    assert_eq!(a.times_s, b.times_s);
    let a = fig5_reduce::compute(10, 7).unwrap();
    let b = fig5_reduce::compute(10, 7).unwrap();
    assert_eq!(a.points[0].completion_us, b.points[0].completion_us);
}
