//! Complete descriptive statistics of a sample.
//!
//! A [`Description`] bundles every summary the paper's reporting sections
//! use — location (three means, median), spread (sd, CoV, IQR, min/max),
//! shape (skewness, excess kurtosis, Bowley skewness) — so report code
//! computes them once and consistently. Moment-based skewness > 0 together
//! with a rejected normality test is the crate's operational definition of
//! the "right-skewed, long-tailed" latency data of §3.1.2.

use serde::{Deserialize, Serialize};

use crate::error::StatsResult;
use crate::quantile::FiveNumberSummary;
use crate::sorted::SortedSamples;
use crate::summary::HigherMoments;
use crate::validate_samples;

/// Full descriptive summary of one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Description {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (`None` if any observation ≤ 0).
    pub geometric_mean: Option<f64>,
    /// Harmonic mean (`None` if any observation ≤ 0).
    pub harmonic_mean: Option<f64>,
    /// Five-number summary (min, quartiles, max).
    pub five_number: FiveNumberSummary,
    /// Sample standard deviation (`None` for n < 2).
    pub std_dev: Option<f64>,
    /// Coefficient of variation (`None` when undefined).
    pub cov: Option<f64>,
    /// Moment-based sample skewness g₁ (`None` for n < 3 or zero sd).
    pub skewness: Option<f64>,
    /// Excess kurtosis g₂ (`None` for n < 4 or zero sd).
    pub excess_kurtosis: Option<f64>,
}

/// Sample skewness `g₁ = m₃ / m₂^{3/2}` (biased moment estimator),
/// accumulated in a single pass.
pub fn skewness(xs: &[f64]) -> StatsResult<Option<f64>> {
    validate_samples(xs)?;
    let m: HigherMoments = xs.iter().copied().collect();
    Ok(m.skewness())
}

/// Excess kurtosis `g₂ = m₄ / m₂² − 3` (biased moment estimator),
/// accumulated in a single pass.
pub fn excess_kurtosis(xs: &[f64]) -> StatsResult<Option<f64>> {
    validate_samples(xs)?;
    let m: HigherMoments = xs.iter().copied().collect();
    Ok(m.excess_kurtosis())
}

/// Computes the full description of a sample: one streaming pass over the
/// data ([`HigherMoments`]: all three means, variance, skewness and
/// kurtosis) plus one sort ([`SortedSamples`]: the five-number summary) —
/// the multi-call formulation needed six passes and a separate sort.
pub fn describe(xs: &[f64]) -> StatsResult<Description> {
    let sorted = SortedSamples::new(xs)?;
    let m: HigherMoments = xs.iter().copied().collect();
    let mean = m.mean().expect("validated non-empty");
    let std_dev = m.std_dev();
    let cov = std_dev.and_then(|s| (mean != 0.0).then(|| s / mean));
    Ok(Description {
        n: xs.len(),
        mean,
        geometric_mean: m.geometric_mean(),
        harmonic_mean: m.harmonic_mean(),
        five_number: sorted.five_number(),
        std_dev,
        cov,
        skewness: m.skewness(),
        excess_kurtosis: m.excess_kurtosis(),
    })
}

/// [`describe`] from an already-sorted cache: zero additional sorts.
pub fn describe_sorted(sorted: &SortedSamples) -> StatsResult<Description> {
    let m: HigherMoments = sorted.as_slice().iter().copied().collect();
    let mean = m.mean().expect("SortedSamples is non-empty");
    let std_dev = m.std_dev();
    let cov = std_dev.and_then(|s| (mean != 0.0).then(|| s / mean));
    Ok(Description {
        n: sorted.len(),
        mean,
        geometric_mean: m.geometric_mean(),
        harmonic_mean: m.harmonic_mean(),
        five_number: sorted.five_number(),
        std_dev,
        cov,
        skewness: m.skewness(),
        excess_kurtosis: m.excess_kurtosis(),
    })
}

impl Description {
    /// Renders a one-block textual summary.
    pub fn render(&self) -> String {
        let fmt_opt = |o: Option<f64>| match o {
            Some(v) => format!("{v:.6}"),
            None => "n/a".into(),
        };
        format!(
            "n={}  mean={:.6}  gm={}  hm={}\nmin={:.6}  q1={:.6}  median={:.6}  q3={:.6}  max={:.6}\nsd={}  CoV={}  skew={}  ex.kurtosis={}\n",
            self.n,
            self.mean,
            fmt_opt(self.geometric_mean),
            fmt_opt(self.harmonic_mean),
            self.five_number.min,
            self.five_number.q1,
            self.five_number.median,
            self.five_number.q3,
            self.five_number.max,
            fmt_opt(self.std_dev),
            fmt_opt(self.cov),
            fmt_opt(self.skewness),
            fmt_opt(self.excess_kurtosis),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn symmetric_sample_has_zero_skew() {
        let xs = normal_sample(1001);
        let s = skewness(&xs).unwrap().unwrap();
        assert!(s.abs() < 0.01, "skew {s}");
        // Normal data: excess kurtosis near 0.
        let k = excess_kurtosis(&xs).unwrap().unwrap();
        assert!(k.abs() < 0.25, "kurtosis {k}");
    }

    #[test]
    fn lognormal_sample_is_right_skewed_heavy_tailed() {
        let xs: Vec<f64> = normal_sample(2000).iter().map(|z| z.exp()).collect();
        assert!(skewness(&xs).unwrap().unwrap() > 1.0);
        assert!(excess_kurtosis(&xs).unwrap().unwrap() > 1.0);
    }

    #[test]
    fn left_skew_detected() {
        let xs: Vec<f64> = normal_sample(2000).iter().map(|z| -(z.exp())).collect();
        assert!(skewness(&xs).unwrap().unwrap() < -1.0);
    }

    #[test]
    fn uniform_has_negative_excess_kurtosis() {
        // Uniform: excess kurtosis = -1.2.
        let xs: Vec<f64> = (0..5000).map(|i| i as f64 / 5000.0).collect();
        let k = excess_kurtosis(&xs).unwrap().unwrap();
        assert!((k + 1.2).abs() < 0.05, "kurtosis {k}");
    }

    #[test]
    fn describe_bundles_everything() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = describe(&xs).unwrap();
        assert_eq!(d.n, 100);
        assert_eq!(d.mean, 50.5);
        assert!(d.geometric_mean.unwrap() < d.mean);
        assert!(d.harmonic_mean.unwrap() < d.geometric_mean.unwrap());
        assert!(d.std_dev.is_some());
        assert!(d.cov.is_some());
        assert!(d.skewness.unwrap().abs() < 1e-9); // symmetric
        let text = d.render();
        assert!(text.contains("median=50.5"));
        assert!(text.contains("skew="));
    }

    #[test]
    fn describe_sorted_matches_describe() {
        let xs: Vec<f64> = (0..300)
            .map(|i| ((i as f64 * 0.917).cos() + 3.0) * 2.0)
            .collect();
        let via_slice = describe(&xs).unwrap();
        let sorted = crate::sorted::SortedSamples::new(&xs).unwrap();
        let via_cache = describe_sorted(&sorted).unwrap();
        // Only the moment accumulation order differs (sorted vs input
        // order), so the results agree to floating-point noise.
        assert_eq!(via_slice.n, via_cache.n);
        assert_eq!(via_slice.five_number, via_cache.five_number);
        assert!((via_slice.mean - via_cache.mean).abs() < 1e-10);
        assert!((via_slice.skewness.unwrap() - via_cache.skewness.unwrap()).abs() < 1e-8);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(skewness(&[1.0, 2.0]).unwrap(), None);
        assert_eq!(excess_kurtosis(&[1.0, 2.0, 3.0]).unwrap(), None);
        assert_eq!(skewness(&[5.0; 10]).unwrap(), None); // zero variance
        let d = describe(&[-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(d.geometric_mean, None); // non-positive values
        assert_eq!(d.harmonic_mean, None);
    }
}
