//! Regenerates Figure 3: latency significance on two systems.

use scibench_bench::figures::fig3_significance;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let samples = samples_from_env(1_000_000);
    let fig = fig3_significance::compute(samples, DEFAULT_SEED).expect("figure 3 pipeline");
    println!("{}", fig.render());
    let path = output::write_csv("fig3_significance", &fig.dataset()).expect("write csv");
    println!("summary data: {}", path.display());
}
