//! Regenerates every table and figure in one run, writing all text
//! renditions and CSV exports into `figures/`.
//!
//! `SCIBENCH_SAMPLES` scales the ping-pong sample counts (default 1M,
//! matching the paper).

use std::fs;

use scibench_bench::figures::*;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn save(name: &str, text: &str) {
    fs::create_dir_all(output::figures_dir()).expect("create figures dir");
    let path = output::figures_dir().join(format!("{name}.txt"));
    fs::write(&path, text).expect("write figure text");
    println!("wrote {}", path.display());
}

fn main() {
    let big = samples_from_env(1_000_000);
    let seed = DEFAULT_SEED;

    let f1 = fig1_hpl::compute(50, seed).expect("fig1");
    save("fig1_hpl", &f1.render());
    output::write_csv("fig1_hpl", &f1.dataset()).expect("csv");

    let t1 = table1::compute();
    save("table1_survey", &t1.render());
    output::write_csv("table1_scores", &t1.dataset()).expect("csv");

    let f2 = fig2_normalization::compute(big, seed).expect("fig2");
    save("fig2_normalization", &f2.render());
    output::write_csv("fig2_qq", &f2.dataset()).expect("csv");

    let f3 = fig3_significance::compute(big, seed).expect("fig3");
    save("fig3_significance", &f3.render());
    output::write_csv("fig3_significance", &f3.dataset()).expect("csv");
    // The reproduction audits itself against the twelve rules.
    let audit = scibench::rules::RuleAudit::check(&f3.report());
    save("fig3_rule_audit", &audit.render());
    assert!(audit.passed(), "figure 3 report failed its own audit");

    let f4 = fig4_quantreg::compute(big, seed).expect("fig4");
    save("fig4_quantile_regression", &f4.render());
    output::write_csv("fig4_quantreg", &f4.dataset()).expect("csv");

    let f5 = fig5_reduce::compute(1_000, seed).expect("fig5");
    save("fig5_reduce_scaling", &f5.render());
    output::write_csv("fig5_reduce", &f5.dataset()).expect("csv");

    let f6 = fig6_variation::compute(64, 1_000, seed).expect("fig6");
    save("fig6_process_variation", &f6.render());
    output::write_csv("fig6_variation", &f6.dataset()).expect("csv");

    let f7ab = fig7ab_bounds::compute(10, seed).expect("fig7ab");
    save("fig7ab_bounds", &f7ab.render());
    output::write_csv("fig7ab_bounds", &f7ab.dataset()).expect("csv");

    let f7c = fig7c_plots::compute(big, seed).expect("fig7c");
    save("fig7c_plots", &f7c.render());
    output::write_csv("fig7c_plots", &f7c.dataset()).expect("csv");

    let ex = means_example::compute().expect("means example");
    save("means_worked_example", &ex.render());

    println!("\nall figures regenerated (seed {seed:#x}, {big} samples for 1M-sample figures)");
}
