//! Ping-pong latency benchmark (Figures 2, 3, 4 and 7(c) of the paper).
//!
//! "All ping-pong results use two processes on different compute nodes"
//! (§4.1.2). One sample is half the round-trip time of a `bytes`-sized
//! message: `((a→b) + (b→a)) / 2`, each direction drawn from the machine's
//! noisy network model. The first iterations of a fresh connection pay a
//! warmup surcharge (connection establishment, §4.1.2 "Warmup"), which is
//! what makes the paper's advice to discard the first measurement
//! observable in the simulation.

use crate::fault::{FaultContext, SimFault};
use crate::machine::MachineSpec;
use crate::network::NetworkModel;
use crate::rng::SimRng;

/// Configuration of a ping-pong run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongConfig {
    /// Message payload in bytes (the paper uses 64 B).
    pub bytes: usize,
    /// Number of latency samples to record.
    pub samples: usize,
    /// Node hosting the first process.
    pub node_a: usize,
    /// Node hosting the second process.
    pub node_b: usize,
    /// Number of initial iterations that pay the warmup surcharge.
    pub warmup_iterations: usize,
    /// Multiplicative surcharge of warmup iterations (e.g. 3.0 = 3×).
    pub warmup_factor: f64,
}

impl PingPongConfig {
    /// The paper's 64 B inter-node configuration with `samples` samples.
    ///
    /// The two nodes sit in the same Dragonfly group on different routers
    /// (or different leaves of a fat tree) — a typical batch-system
    /// placement. Node 18 is on router 4 of group 0 in the Dragonfly
    /// presets (2 hops from node 0) and on the second leaf switch of the
    /// radix-36 fat tree (4 hops).
    pub fn paper_64b(samples: usize) -> Self {
        Self {
            bytes: 64,
            samples,
            node_a: 0,
            node_b: 18,
            warmup_iterations: 16,
            warmup_factor: 3.0,
        }
    }
}

/// One-way latencies in nanoseconds, warmup iterations *included* (the
/// measurement harness is responsible for discarding them, as Rule 9's
/// discussion of warmup prescribes).
pub fn pingpong_latencies_ns(
    machine: &MachineSpec,
    config: &PingPongConfig,
    rng: &mut SimRng,
) -> Vec<f64> {
    let net = NetworkModel::new(machine);
    // The deterministic base cost depends only on (endpoints, bytes), so it
    // is hoisted out of the sample loop; per-sample work is noise draws
    // only. Draw order is unchanged, so results stay bit-identical.
    let base_fwd = net.base_transfer_ns(config.node_a, config.node_b, config.bytes);
    let base_bwd = net.base_transfer_ns(config.node_b, config.node_a, config.bytes);
    let mut out = Vec::with_capacity(config.samples);
    for i in 0..config.samples {
        let fwd = machine.noise.perturb(base_fwd, rng);
        let bwd = machine.noise.perturb(base_bwd, rng);
        let mut sample = 0.5 * (fwd + bwd);
        if i < config.warmup_iterations {
            sample *= config.warmup_factor;
        }
        out.push(sample);
    }
    out
}

/// One-way latencies on a machine with injected faults: each sample is
/// either a latency in nanoseconds or the fault that destroyed it.
///
/// Per-sample fault semantics:
/// - a crashed endpoint fails the sample (and, since crashes are
///   permanent, every later sample too),
/// - a dead link (drops beyond the retransmit budget) fails just that
///   sample — the connection is re-established for the next one,
/// - a clock jump on either node *during* the round trip makes the timer
///   reading unusable, so the sample reports [`SimFault::ClockJumped`],
/// - stragglers and surviving retransmits inflate the cost but keep the
///   sample valid.
///
/// Fault coins come from the context's dedicated stream, so a run whose
/// samples experience zero fault events is bit-identical to
/// [`pingpong_latencies_ns`] under the same `rng`.
pub fn pingpong_latencies_faulty_ns(
    machine: &MachineSpec,
    config: &PingPongConfig,
    ctx: &mut FaultContext,
    rng: &mut SimRng,
) -> Vec<Result<f64, SimFault>> {
    let net = NetworkModel::new(machine);
    // Same base-cost hoist as the fault-free loop: fault coins and noise
    // draws are untouched, so faultless samples stay bit-identical.
    let base_fwd = net.base_transfer_ns(config.node_a, config.node_b, config.bytes);
    let base_bwd = net.base_transfer_ns(config.node_b, config.node_a, config.bytes);
    let mut out = Vec::with_capacity(config.samples);
    for i in 0..config.samples {
        let started_ns = ctx.now_ns();
        let fwd =
            net.transfer_faulty_from_base_ns(config.node_a, config.node_b, base_fwd, ctx, rng);
        let bwd = match fwd {
            Ok(_) => {
                net.transfer_faulty_from_base_ns(config.node_b, config.node_a, base_bwd, ctx, rng)
            }
            Err(e) => Err(e),
        };
        let sample = match (fwd, bwd) {
            (Ok(f), Ok(b)) => {
                let mut s = 0.5 * (f + b);
                if i < config.warmup_iterations {
                    s *= config.warmup_factor;
                }
                // A clock jump inside the measurement window corrupts the
                // timer reading for this sample.
                match ctx.jump_crossing([config.node_a, config.node_b], started_ns, ctx.now_ns()) {
                    Some((node, jump)) => Err(SimFault::ClockJumped {
                        node,
                        at_ns: jump.at_ns,
                        jump_ns: jump.jump_ns,
                    }),
                    None => Ok(s),
                }
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        };
        out.push(sample);
    }
    out
}

/// Convenience: latencies in microseconds (the unit of every ping-pong
/// figure in the paper).
pub fn pingpong_latencies_us(
    machine: &MachineSpec,
    config: &PingPongConfig,
    rng: &mut SimRng,
) -> Vec<f64> {
    pingpong_latencies_ns(machine, config, rng)
        .into_iter()
        .map(|ns| ns * 1e-3)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scibench_stats::quantile::{quantile, QuantileMethod};
    use scibench_stats::summary::arithmetic_mean;

    fn run(machine: &MachineSpec, samples: usize, seed: u64) -> Vec<f64> {
        let mut cfg = PingPongConfig::paper_64b(samples);
        cfg.warmup_iterations = 0;
        let mut rng = SimRng::new(seed);
        pingpong_latencies_us(machine, &cfg, &mut rng)
    }

    #[test]
    fn quiet_machine_is_deterministic() {
        let m = MachineSpec::test_machine(8);
        let xs = run(&m, 100, 1);
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn warmup_iterations_are_slower() {
        let m = MachineSpec::test_machine(8);
        let cfg = PingPongConfig {
            warmup_iterations: 5,
            ..PingPongConfig::paper_64b(20)
        };
        let mut rng = SimRng::new(1);
        let xs = pingpong_latencies_ns(&m, &cfg, &mut rng);
        for i in 0..5 {
            assert!(xs[i] > xs[10] * 2.0, "warmup sample {i} = {}", xs[i]);
        }
    }

    #[test]
    fn dora_distribution_matches_figure3_shape() {
        // Figure 3 (Piz Dora): min 1.57 µs, median ≈ 1.75 µs, mean ≈ 1.8 µs,
        // max 7.2 µs over 1M samples. We check 100k samples against loose
        // bands around those targets.
        let m = MachineSpec::piz_dora();
        let xs = run(&m, 100_000, 42);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        let mean = arithmetic_mean(&xs).unwrap();
        let median = quantile(&xs, 0.5, QuantileMethod::Interpolated).unwrap();
        assert!((1.45..1.70).contains(&min), "min {min}");
        assert!((1.60..1.90).contains(&median), "median {median}");
        assert!((1.65..1.95).contains(&mean), "mean {mean}");
        assert!((3.0..15.0).contains(&max), "max {max}");
        assert!(mean > median, "right skew expected");
    }

    #[test]
    fn pilatus_distribution_matches_figure3_shape() {
        // Figure 3 (Pilatus): min 1.48 µs (below Dora), heavier tail
        // (max 11.59 µs), mean ≈ Dora + 0.108 µs.
        let dora = run(&MachineSpec::piz_dora(), 100_000, 42);
        let pilatus = run(&MachineSpec::pilatus(), 100_000, 43);
        let min_d = dora.iter().cloned().fold(f64::INFINITY, f64::min);
        let min_p = pilatus.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min_p < min_d, "Pilatus min {min_p} vs Dora {min_d}");
        let max_d = dora.iter().cloned().fold(0.0, f64::max);
        let max_p = pilatus.iter().cloned().fold(0.0, f64::max);
        assert!(max_p > max_d, "Pilatus max {max_p} vs Dora {max_d}");
        let mean_diff = arithmetic_mean(&pilatus).unwrap() - arithmetic_mean(&dora).unwrap();
        assert!((0.02..0.30).contains(&mean_diff), "mean diff {mean_diff}");
    }

    #[test]
    fn quantile_crossover_for_figure4() {
        // The quantile-regression figure requires: Pilatus faster at low
        // quantiles, slower at high quantiles.
        let dora = run(&MachineSpec::piz_dora(), 50_000, 7);
        let pilatus = run(&MachineSpec::pilatus(), 50_000, 8);
        let q = |xs: &[f64], p: f64| quantile(xs, p, QuantileMethod::Interpolated).unwrap();
        let low_diff = q(&pilatus, 0.05) - q(&dora, 0.05);
        let high_diff = q(&pilatus, 0.9) - q(&dora, 0.9);
        assert!(low_diff < 0.0, "low-quantile diff {low_diff}");
        assert!(high_diff > 0.0, "high-quantile diff {high_diff}");
    }

    #[test]
    fn larger_messages_take_longer() {
        let m = MachineSpec::test_machine(4);
        let mut small_cfg = PingPongConfig::paper_64b(10);
        small_cfg.warmup_iterations = 0;
        let mut big_cfg = small_cfg;
        big_cfg.bytes = 65536;
        let mut rng = SimRng::new(1);
        let small = pingpong_latencies_ns(&m, &small_cfg, &mut rng);
        let big = pingpong_latencies_ns(&m, &big_cfg, &mut rng);
        assert!(big[0] > small[0]);
    }

    #[test]
    fn faultless_run_matches_plain_bit_for_bit() {
        use crate::fault::{FaultContext, FaultPlan};
        let m = MachineSpec::piz_dora();
        let cfg = PingPongConfig::paper_64b(500);
        let root = SimRng::new(7);
        let mut rng_plain = root.fork("pingpong");
        let mut rng_faulty = root.fork("pingpong");
        let plain = pingpong_latencies_ns(&m, &cfg, &mut rng_plain);
        let mut ctx = FaultContext::new(&FaultPlan::none(), m.nodes, &root);
        let faulty = pingpong_latencies_faulty_ns(&m, &cfg, &mut ctx, &mut rng_faulty);
        assert_eq!(plain.len(), faulty.len());
        for (p, f) in plain.iter().zip(&faulty) {
            assert_eq!(Ok(*p), *f);
        }
    }

    #[test]
    fn crash_kills_the_tail_of_the_run() {
        use crate::fault::{FaultContext, FaultPlan, SimFault};
        let m = MachineSpec::test_machine(32);
        let cfg = PingPongConfig::paper_64b(100);
        let plan = FaultPlan {
            node_crash_prob: 1.0,
            // Transfers are ~1 µs; crash inside the first ~50 samples.
            crash_window_ns: 100_000.0,
            ..FaultPlan::none()
        };
        let root = SimRng::new(3);
        let mut ctx = FaultContext::new(&plan, m.nodes, &root);
        let mut rng = root.fork("pingpong");
        let xs = pingpong_latencies_faulty_ns(&m, &cfg, &mut ctx, &mut rng);
        let first_err = xs.iter().position(|s| s.is_err());
        let first_err = first_err.expect("a certain crash must eventually fail samples");
        // Once crashed, every later sample fails too.
        for (i, s) in xs.iter().enumerate().skip(first_err) {
            assert!(
                matches!(s, Err(SimFault::NodeCrashed { .. })),
                "sample {i} after crash: {s:?}"
            );
        }
    }

    #[test]
    fn clock_jump_corrupts_exactly_one_sample() {
        use crate::fault::{FaultContext, FaultPlan, SimFault};
        let m = MachineSpec::test_machine(32);
        let cfg = PingPongConfig::paper_64b(200);
        let plan = FaultPlan {
            clock_jump_prob: 1.0,
            clock_jump_ns: 1e6,
            clock_jump_window_ns: 100_000.0,
            ..FaultPlan::none()
        };
        let root = SimRng::new(11);
        let mut ctx = FaultContext::new(&plan, m.nodes, &root);
        let mut rng = root.fork("pingpong");
        let xs = pingpong_latencies_faulty_ns(&m, &cfg, &mut ctx, &mut rng);
        let jumps = xs
            .iter()
            .filter(|s| matches!(s, Err(SimFault::ClockJumped { .. })))
            .count();
        // Both endpoints have one scheduled jump inside the run window;
        // each corrupts at most one sample.
        assert!((1..=2).contains(&jumps), "jumps = {jumps}");
        assert!(xs.iter().filter(|s| s.is_ok()).count() >= 198);
    }

    #[test]
    fn seed_determinism() {
        let m = MachineSpec::piz_dora();
        assert_eq!(run(&m, 1000, 5), run(&m, 1000, 5));
        assert_ne!(run(&m, 1000, 5), run(&m, 1000, 6));
    }
}
