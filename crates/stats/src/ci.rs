//! Confidence intervals (§3.1.2, §3.1.3 and §4.2.2 of the paper).
//!
//! Two families are implemented:
//!
//! * **Parametric** CIs of the mean based on Student's t distribution —
//!   valid only for (approximately) normal iid data;
//! * **Nonparametric** CIs of the median and arbitrary quantiles based on
//!   order statistics (binomial/normal-approximation rank bounds after
//!   Le Boudec) — valid for any iid data, the paper's recommendation for
//!   the skewed multi-modal distributions real systems produce.
//!
//! The module also provides the paper's §4.2.2 machinery for planning the
//! *number of measurements*: the closed-form `n = (s·t/(e·x̄))²` for normal
//! data and the "recompute the nonparametric CI every k measurements and
//! stop when it is tight enough" loop for everything else.

use serde::{Deserialize, Serialize};

use crate::dist::normal::z_critical;
use crate::dist::student_t::t_critical;
use crate::error::{StatsError, StatsResult};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::sorted::SortedSamples;
use crate::summary::{arithmetic_mean, sample_std_dev, OnlineMoments};
use crate::{sorted_copy, validate_samples};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate (mean, median or quantile).
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level `1 − α`, e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Half-width relative to the estimate, `(upper−lower)/(2·|estimate|)`.
    ///
    /// This is the "CI was within 5 % of the mean" criterion used in the
    /// caption of Figure 7 of the paper. Returns `None` when the estimate
    /// is zero.
    pub fn relative_half_width(&self) -> Option<f64> {
        (self.estimate != 0.0).then(|| self.width() / (2.0 * self.estimate.abs()))
    }

    /// Whether two intervals do **not** overlap.
    ///
    /// §3.2: "If 1−α confidence intervals do not overlap, then one can be
    /// 1−α confident that there is a statistically significant difference.
    /// The converse is not true."
    pub fn disjoint_from(&self, other: &ConfidenceInterval) -> bool {
        self.upper < other.lower || other.upper < self.lower
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

/// Student-t confidence interval of the arithmetic mean:
/// `[x̄ − t(n−1, α/2)·s/√n, x̄ + t(n−1, α/2)·s/√n]` (§3.1.2).
///
/// Only valid if the samples are iid from a (roughly) normal distribution —
/// check with [`crate::normality::shapiro_wilk`] first (Rule 6).
pub fn mean_ci(xs: &[f64], confidence: f64) -> StatsResult<ConfidenceInterval> {
    validate_confidence(confidence)?;
    validate_samples(xs)?;
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let mean = arithmetic_mean(xs)?;
    let s = sample_std_dev(xs)?;
    let t = t_critical(n - 1.0, 1.0 - confidence)?;
    let half = t * s / n.sqrt();
    Ok(ConfidenceInterval {
        estimate: mean,
        lower: mean - half,
        upper: mean + half,
        confidence,
    })
}

/// The rank bounds (1-based, inclusive) of a nonparametric CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankBounds {
    /// 1-based rank of the lower CI bound.
    pub lower: usize,
    /// 1-based rank of the upper CI bound.
    pub upper: usize,
}

/// Rank bounds for the `1−α` CI of the `p`-quantile of `n` iid samples,
/// using the normal approximation to the binomial (Le Boudec, §3.1.3).
///
/// For the median (`p = 0.5`) this reduces to the paper's formula: ranks
/// `⌊(n − z(α/2)√n)/2⌋` through `⌈1 + (n + z(α/2)√n)/2⌉`. At least `n > 5`
/// samples are required (the paper's stated minimum for nonparametric CIs).
pub fn quantile_ci_ranks(n: usize, p: f64, confidence: f64) -> StatsResult<RankBounds> {
    validate_confidence(confidence)?;
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "p",
            value: p,
        });
    }
    if n <= 5 {
        return Err(StatsError::TooFewSamples {
            required: 6,
            actual: n,
        });
    }
    let alpha = 1.0 - confidence;
    let z = z_critical(alpha)?;
    let nf = n as f64;
    let center = nf * p;
    let spread = z * (nf * p * (1.0 - p)).sqrt();
    let mut lower = ((center - spread).floor().max(1.0)) as usize;
    let mut upper = (((center + spread).ceil() + 1.0).min(nf)) as usize;
    if lower >= upper {
        return Err(StatsError::TooFewSamples {
            required: ((z * z * p.max(1.0 - p) / p.min(1.0 - p)).ceil() as usize).max(6),
            actual: n,
        });
    }
    // The normal approximation to the binomial can under-cover for extreme
    // quantiles. Verify the exact coverage P[x₍l₎ ≤ q_p ≤ x₍u₎] =
    // F(u−1; n, p) − F(l−1; n, p) and widen the ranks if necessary.
    for _ in 0..n {
        let coverage = binomial_cdf(upper - 1, n, p) - binomial_cdf(lower.wrapping_sub(1), n, p);
        if coverage + 1e-12 >= confidence {
            return Ok(RankBounds { lower, upper });
        }
        let can_lower = lower > 1;
        let can_upper = upper < n;
        if !can_lower && !can_upper {
            break;
        }
        if can_lower {
            lower -= 1;
        }
        if can_upper {
            upper += 1;
        }
    }
    let final_cov = binomial_cdf(upper - 1, n, p) - binomial_cdf(lower.wrapping_sub(1), n, p);
    if final_cov + 1e-12 >= confidence {
        Ok(RankBounds { lower, upper })
    } else {
        Err(StatsError::TooFewSamples {
            required: ((z * z / p.min(1.0 - p)).ceil() as usize).max(6),
            actual: n,
        })
    }
}

/// Binomial CDF `P[B ≤ k]` for `B ~ Bin(n, p)`, via the regularized
/// incomplete beta function. `k == usize::MAX` (wrapped `-1`) yields 0.
fn binomial_cdf(k: usize, n: usize, p: f64) -> f64 {
    if k == usize::MAX {
        return 0.0;
    }
    if k >= n {
        return 1.0;
    }
    // F(k; n, p) = I_{1-p}(n-k, k+1)
    crate::special::beta_inc((n - k) as f64, (k + 1) as f64, 1.0 - p)
}

/// Nonparametric `1−α` CI of the median (§3.1.3).
///
/// ```
/// use scibench_stats::ci::median_ci;
/// let xs: Vec<f64> = (1..=100).map(f64::from).collect();
/// let ci = median_ci(&xs, 0.95).unwrap();
/// assert!(ci.lower <= 50.5 && 50.5 <= ci.upper);
/// // Bounds are observed order statistics (ranks 40 and 61 here).
/// assert_eq!((ci.lower, ci.upper), (40.0, 61.0));
/// ```
pub fn median_ci(xs: &[f64], confidence: f64) -> StatsResult<ConfidenceInterval> {
    quantile_ci(xs, 0.5, confidence)
}

/// Nonparametric `1−α` CI of the `p`-quantile.
///
/// The bounds are observed order statistics, so the interval may be
/// asymmetric — exactly the behaviour the paper describes for skewed
/// distributions.
pub fn quantile_ci(xs: &[f64], p: f64, confidence: f64) -> StatsResult<ConfidenceInterval> {
    validate_samples(xs)?;
    let ranks = quantile_ci_ranks(xs.len(), p, confidence)?;
    let sorted = sorted_copy(xs);
    let estimate = quantile_sorted(&sorted, p, QuantileMethod::Interpolated);
    Ok(ConfidenceInterval {
        estimate,
        lower: sorted[ranks.lower - 1],
        upper: sorted[ranks.upper - 1],
        confidence,
    })
}

/// Number of measurements needed so that the `1−α` CI of the mean lies
/// within `±e·x̄` (§4.2.2): `n = (s·t(n−1, α/2) / (e·x̄))²`, evaluated with
/// the pilot sample's `s`, `x̄` and df.
///
/// `rel_error` is the paper's `e` (e.g. 0.05 for "within 5 % of the mean").
pub fn required_samples_normal(
    pilot: &[f64],
    confidence: f64,
    rel_error: f64,
) -> StatsResult<usize> {
    validate_confidence(confidence)?;
    if !(rel_error > 0.0 && rel_error < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "rel_error",
            value: rel_error,
        });
    }
    validate_samples(pilot)?;
    if pilot.len() < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: pilot.len(),
        });
    }
    let mean = arithmetic_mean(pilot)?;
    if mean == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let s = sample_std_dev(pilot)?;
    if s == 0.0 {
        // Deterministic data: one more sample is already enough.
        return Ok(pilot.len());
    }
    let t = t_critical(pilot.len() as f64 - 1.0, 1.0 - confidence)?;
    let n = (s * t / (rel_error * mean)).powi(2);
    Ok(n.ceil().max(2.0) as usize)
}

/// [`required_samples_normal`] evaluated from a streaming accumulator:
/// O(1) per call instead of a full pass over the pilot sample.
///
/// This is what makes the adaptive-mean stopping rule cheap — the
/// measurement loop replans after every batch, and with `n` samples
/// collected the slice-based variant costs O(n) per replan (O(n²/batch)
/// over a run) while this one reads the already-accumulated moments.
/// Same contract as the slice variant: the accumulator must contain only
/// finite observations.
pub fn required_samples_from_moments(
    moments: &OnlineMoments,
    confidence: f64,
    rel_error: f64,
) -> StatsResult<usize> {
    validate_confidence(confidence)?;
    if !(rel_error > 0.0 && rel_error < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "rel_error",
            value: rel_error,
        });
    }
    if moments.non_finite_count() > 0 {
        return Err(StatsError::NonFiniteSample);
    }
    let n = moments.count() as usize;
    if n < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: n,
        });
    }
    let mean = moments.mean().expect("count checked above");
    let s = moments.std_dev().expect("count checked above");
    if !mean.is_finite() || !s.is_finite() {
        return Err(StatsError::NonFiniteSample);
    }
    if mean == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    if s == 0.0 {
        // Deterministic data: one more sample is already enough.
        return Ok(n);
    }
    let t = t_critical(n as f64 - 1.0, 1.0 - confidence)?;
    let required = (s * t / (rel_error * mean)).powi(2);
    Ok(required.ceil().max(2.0) as usize)
}

/// [`mean_ci`] evaluated from a streaming accumulator: O(1) per call, no
/// sample vector required. This is the Student-t mean CI the bounded-memory
/// streaming path reports (§3.1.2) — the moments are exact (Welford), so
/// unlike the sketch quantiles this interval carries no sketch error.
///
/// Same contract as the slice variant: errors with
/// [`StatsError::NonFiniteSample`] if the accumulator quarantined any
/// non-finite observations, and needs at least two finite samples.
pub fn mean_ci_from_moments(
    moments: &OnlineMoments,
    confidence: f64,
) -> StatsResult<ConfidenceInterval> {
    validate_confidence(confidence)?;
    if moments.non_finite_count() > 0 {
        return Err(StatsError::NonFiniteSample);
    }
    let n = moments.count() as usize;
    if n < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: n,
        });
    }
    let mean = moments.mean().expect("count checked above");
    let s = moments.std_dev().expect("count checked above");
    let t = t_critical(n as f64 - 1.0, 1.0 - confidence)?;
    let half = t * s / (n as f64).sqrt();
    Ok(ConfidenceInterval {
        estimate: mean,
        lower: mean - half,
        upper: mean + half,
        confidence,
    })
}

/// Checks whether a sample already satisfies the nonparametric stopping
/// criterion of §4.2.2: the `1−α` CI of the median is within `±e·median`.
///
/// Returns `Ok(None)` when the CI cannot be computed yet (too few samples)
/// and `Ok(Some(ci))` with the interval once it can; callers stop when
/// `ci.relative_half_width() <= rel_error`.
pub fn nonparametric_stop_check(
    xs: &[f64],
    confidence: f64,
    rel_error: f64,
) -> StatsResult<Option<(ConfidenceInterval, bool)>> {
    validate_confidence(confidence)?;
    if !(rel_error > 0.0 && rel_error < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "rel_error",
            value: rel_error,
        });
    }
    match median_ci(xs, confidence) {
        Ok(ci) => {
            let tight = ci
                .relative_half_width()
                .map(|r| r <= rel_error)
                .unwrap_or(false);
            Ok(Some((ci, tight)))
        }
        Err(StatsError::TooFewSamples { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// [`nonparametric_stop_check`] from an incrementally maintained
/// [`SortedSamples`] cache — the adaptive-median loop merges each new
/// batch in O(n + b) instead of re-sorting all n samples per check.
pub fn nonparametric_stop_check_sorted(
    sorted: &SortedSamples,
    confidence: f64,
    rel_error: f64,
) -> StatsResult<Option<(ConfidenceInterval, bool)>> {
    validate_confidence(confidence)?;
    if !(rel_error > 0.0 && rel_error < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "rel_error",
            value: rel_error,
        });
    }
    match sorted.median_ci(confidence) {
        Ok(ci) => {
            let tight = ci
                .relative_half_width()
                .map(|r| r <= rel_error)
                .unwrap_or(false);
            Ok(Some((ci, tight)))
        }
        Err(StatsError::TooFewSamples { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

fn validate_confidence(confidence: f64) -> StatsResult<()> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_textbook_example() {
        // n=4, mean=10, s=2 → 95% CI half-width = 3.182 * 2 / 2 = 3.182
        let xs = [8.0, 9.0, 11.0, 12.0];
        let ci = mean_ci(&xs, 0.95).unwrap();
        assert!((ci.estimate - 10.0).abs() < 1e-12);
        let s = sample_std_dev(&xs).unwrap();
        let half = 3.182_446 * s / 2.0;
        assert!((ci.upper - (10.0 + half)).abs() < 1e-3);
        assert!((ci.lower - (10.0 - half)).abs() < 1e-3);
        assert_eq!(ci.confidence, 0.95);
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| 10.0 + (i % 3) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| 10.0 + (i % 3) as f64).collect();
        let ci_s = mean_ci(&small, 0.95).unwrap();
        let ci_l = mean_ci(&large, 0.95).unwrap();
        assert!(ci_l.width() < ci_s.width());
    }

    #[test]
    fn mean_ci_wider_at_higher_confidence() {
        let xs: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin() + 5.0).collect();
        let c90 = mean_ci(&xs, 0.90).unwrap();
        let c99 = mean_ci(&xs, 0.99).unwrap();
        assert!(c99.width() > c90.width());
    }

    #[test]
    fn median_ci_ranks_match_paper_formula() {
        // Paper: lower = floor((n - z*sqrt(n))/2), upper = ceil(1 + (n + z*sqrt(n))/2)
        // For n = 100, 95%: z = 1.96, sqrt(100) = 10 →
        // lower = floor(80.4/2) = 40, upper = ceil(1 + 119.6/2) = ceil(60.8) = 61
        let rb = quantile_ci_ranks(100, 0.5, 0.95).unwrap();
        assert_eq!(rb.lower, 40);
        assert_eq!(rb.upper, 61);
    }

    #[test]
    fn median_ci_bounds_are_order_statistics() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let ci = median_ci(&xs, 0.95).unwrap();
        assert!(xs.contains(&ci.lower));
        assert!(xs.contains(&ci.upper));
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
    }

    #[test]
    fn median_ci_requires_more_than_5() {
        assert!(matches!(
            median_ci(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95),
            Err(StatsError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn extreme_quantile_needs_many_samples() {
        // 99th percentile CI from 20 samples is not computable.
        assert!(quantile_ci_ranks(20, 0.99, 0.95).is_err());
        // ... but from 1000 it is.
        let rb = quantile_ci_ranks(1000, 0.99, 0.95).unwrap();
        assert!(rb.lower < rb.upper);
        assert!(rb.upper <= 1000);
    }

    #[test]
    fn quantile_ci_asymmetric_for_skewed_data() {
        // Log-normal-ish data: upper CI arm of the median is longer.
        let xs: Vec<f64> = (0..500)
            .map(|i| {
                let u = (i as f64 + 0.5) / 500.0;
                crate::dist::normal::std_normal_inv_cdf(u).exp()
            })
            .collect();
        let ci = median_ci(&xs, 0.95).unwrap();
        let lower_arm = ci.estimate - ci.lower;
        let upper_arm = ci.upper - ci.estimate;
        assert!(upper_arm > 0.0 && lower_arm > 0.0);
        // Right-skew: upper arm at least as long.
        assert!(upper_arm >= lower_arm * 0.8);
    }

    #[test]
    fn disjoint_intervals_detected() {
        let a = ConfidenceInterval {
            estimate: 1.0,
            lower: 0.9,
            upper: 1.1,
            confidence: 0.95,
        };
        let b = ConfidenceInterval {
            estimate: 2.0,
            lower: 1.9,
            upper: 2.1,
            confidence: 0.95,
        };
        let c = ConfidenceInterval {
            estimate: 1.05,
            lower: 1.0,
            upper: 1.2,
            confidence: 0.95,
        };
        assert!(a.disjoint_from(&b));
        assert!(b.disjoint_from(&a));
        assert!(!a.disjoint_from(&c));
        assert!(a.contains(1.0));
        assert!(!a.contains(1.2));
    }

    #[test]
    fn relative_half_width() {
        let ci = ConfidenceInterval {
            estimate: 10.0,
            lower: 9.5,
            upper: 10.5,
            confidence: 0.95,
        };
        assert!((ci.relative_half_width().unwrap() - 0.05).abs() < 1e-12);
        let z = ConfidenceInterval {
            estimate: 0.0,
            lower: -1.0,
            upper: 1.0,
            confidence: 0.95,
        };
        assert_eq!(z.relative_half_width(), None);
    }

    #[test]
    fn required_samples_grows_with_noise() {
        let quiet = [10.0, 10.1, 9.9, 10.0, 10.05, 9.95];
        let noisy = [10.0, 14.0, 6.0, 12.0, 8.0, 11.0];
        let n_quiet = required_samples_normal(&quiet, 0.95, 0.05).unwrap();
        let n_noisy = required_samples_normal(&noisy, 0.95, 0.05).unwrap();
        assert!(n_noisy > n_quiet, "{n_noisy} vs {n_quiet}");
    }

    #[test]
    fn required_samples_deterministic_data() {
        let xs = [5.0; 10];
        assert_eq!(required_samples_normal(&xs, 0.95, 0.05).unwrap(), 10);
    }

    #[test]
    fn required_samples_formula_check() {
        // Manual check: s=1, mean=10, n=16 pilot, e=0.05, t(15, .025)≈2.131
        // n = (1*2.131/(0.05*10))^2 ≈ 18.17 → 19.
        let mut xs = Vec::new();
        for i in 0..16 {
            // mean 10, sample sd exactly computed below
            xs.push(10.0 + if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let s = sample_std_dev(&xs).unwrap();
        let n = required_samples_normal(&xs, 0.95, 0.05).unwrap();
        let t = t_critical(15.0, 0.05).unwrap();
        let want = (s * t / 0.5).powi(2).ceil() as usize;
        assert_eq!(n, want);
    }

    #[test]
    fn nonparametric_stop_check_flow() {
        // Too few samples: None.
        let r = nonparametric_stop_check(&[1.0, 2.0, 3.0], 0.95, 0.05).unwrap();
        assert!(r.is_none());
        // Tight data: stops.
        let xs: Vec<f64> = (0..200).map(|i| 100.0 + (i % 5) as f64 * 0.01).collect();
        let (_ci, tight) = nonparametric_stop_check(&xs, 0.95, 0.05).unwrap().unwrap();
        assert!(tight);
        // Very loose data with few samples: not tight.
        let xs: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0) * 37.0).collect();
        let (_ci, tight) = nonparametric_stop_check(&xs, 0.95, 0.01).unwrap().unwrap();
        assert!(!tight);
    }

    #[test]
    fn moments_replan_matches_slice_replan() {
        let xs: Vec<f64> = (0..40).map(|i| 10.0 + ((i as f64) * 1.3).sin()).collect();
        for upto in [2, 5, 17, 40] {
            let slice = required_samples_normal(&xs[..upto], 0.95, 0.05).unwrap();
            let moments: OnlineMoments = xs[..upto].iter().copied().collect();
            let online = required_samples_from_moments(&moments, 0.95, 0.05).unwrap();
            assert_eq!(slice, online, "n={upto}");
        }
        // Degenerate contracts match too.
        let constant: OnlineMoments = [5.0; 10].iter().copied().collect();
        assert_eq!(
            required_samples_from_moments(&constant, 0.95, 0.05).unwrap(),
            10
        );
        let zero_mean: OnlineMoments = [-1.0, 1.0].iter().copied().collect();
        assert!(matches!(
            required_samples_from_moments(&zero_mean, 0.95, 0.05),
            Err(StatsError::ZeroVariance)
        ));
        let single: OnlineMoments = [1.0].iter().copied().collect();
        assert!(matches!(
            required_samples_from_moments(&single, 0.95, 0.05),
            Err(StatsError::TooFewSamples { .. })
        ));
        let poisoned: OnlineMoments = [1.0, f64::NAN].iter().copied().collect();
        assert!(matches!(
            required_samples_from_moments(&poisoned, 0.95, 0.05),
            Err(StatsError::NonFiniteSample)
        ));
    }

    #[test]
    fn moments_mean_ci_matches_slice_mean_ci() {
        let xs: Vec<f64> = (0..60).map(|i| 42.0 + ((i as f64) * 0.9).cos()).collect();
        let slice = mean_ci(&xs, 0.95).unwrap();
        let moments: OnlineMoments = xs.iter().copied().collect();
        let online = mean_ci_from_moments(&moments, 0.95).unwrap();
        assert!((slice.estimate - online.estimate).abs() < 1e-12);
        assert!((slice.lower - online.lower).abs() < 1e-10);
        assert!((slice.upper - online.upper).abs() < 1e-10);
        let single: OnlineMoments = [1.0].iter().copied().collect();
        assert!(matches!(
            mean_ci_from_moments(&single, 0.95),
            Err(StatsError::TooFewSamples { .. })
        ));
        let poisoned: OnlineMoments = [1.0, 2.0, f64::NAN].iter().copied().collect();
        assert!(matches!(
            mean_ci_from_moments(&poisoned, 0.95),
            Err(StatsError::NonFiniteSample)
        ));
    }

    #[test]
    fn sorted_stop_check_matches_slice_stop_check() {
        let xs: Vec<f64> = (0..150)
            .map(|i| 100.0 + ((i as f64) * 0.77).sin())
            .collect();
        let sorted = SortedSamples::new(&xs).unwrap();
        let a = nonparametric_stop_check(&xs, 0.95, 0.05).unwrap();
        let b = nonparametric_stop_check_sorted(&sorted, 0.95, 0.05).unwrap();
        assert_eq!(a, b);
        let few = SortedSamples::new(&[1.0, 2.0, 3.0]).unwrap();
        assert!(nonparametric_stop_check_sorted(&few, 0.95, 0.05)
            .unwrap()
            .is_none());
    }

    #[test]
    fn invalid_confidence_rejected() {
        assert!(mean_ci(&[1.0, 2.0], 0.0).is_err());
        assert!(mean_ci(&[1.0, 2.0], 1.0).is_err());
        assert!(quantile_ci_ranks(100, 0.5, 1.2).is_err());
        assert!(required_samples_normal(&[1.0, 2.0], 0.95, 0.0).is_err());
    }
}
