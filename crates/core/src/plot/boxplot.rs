//! Box plots (§5.2): quartile box, explicit whisker semantics, optional
//! median notches, outliers.

use serde::{Deserialize, Serialize};

use scibench_stats::ci::median_ci;
use scibench_stats::error::StatsResult;
use scibench_stats::quantile::{quantile, FiveNumberSummary, QuantileMethod};

/// What the whiskers mean — §5.2: "the semantics of the whiskers must be
/// specified".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WhiskerRule {
    /// Min and max observations.
    MinMax,
    /// Largest/smallest observation within 1.5·IQR of the box (Tukey);
    /// everything beyond is listed as an outlier.
    TukeyIqr,
    /// Fixed percentiles, e.g. 1 % / 99 %.
    Percentiles {
        /// Lower whisker percentile in [0, 100].
        lower_pct: f64,
        /// Upper whisker percentile in [0, 100].
        upper_pct: f64,
    },
}

impl WhiskerRule {
    /// Human-readable description for figure captions.
    pub fn describe(&self) -> String {
        match self {
            WhiskerRule::MinMax => "whiskers: min/max".into(),
            WhiskerRule::TukeyIqr => "whiskers: 1.5 IQR (Tukey)".into(),
            WhiskerRule::Percentiles {
                lower_pct,
                upper_pct,
            } => {
                format!("whiskers: P{lower_pct}/P{upper_pct}")
            }
        }
    }
}

/// The statistics behind one box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlotStats {
    /// Optional label (e.g. the process rank or system name).
    pub label: String,
    /// Quartiles and extremes.
    pub five_number: FiveNumberSummary,
    /// Arithmetic mean (often drawn as a point).
    pub mean: f64,
    /// Lower whisker position under the chosen rule.
    pub whisker_low: f64,
    /// Upper whisker position.
    pub whisker_high: f64,
    /// The whisker semantics (always carried with the data).
    pub whisker_rule: WhiskerRule,
    /// Observations outside the whiskers.
    pub outliers: Vec<f64>,
    /// Notch interval: CI of the median ("non-overlapping notches
    /// indicate significant differences").
    pub notch: Option<(f64, f64)>,
}

impl BoxPlotStats {
    /// Computes box statistics for a sample.
    ///
    /// Notches are the 95 % nonparametric CI of the median when enough
    /// samples exist.
    pub fn from_samples(label: &str, xs: &[f64], rule: WhiskerRule) -> StatsResult<Self> {
        let five = FiveNumberSummary::from_samples(xs)?;
        let mean = scibench_stats::summary::arithmetic_mean(xs)?;
        let (lo, hi) = match rule {
            WhiskerRule::MinMax => (five.min, five.max),
            WhiskerRule::TukeyIqr => {
                let fence_lo = five.q1 - 1.5 * five.iqr();
                let fence_hi = five.q3 + 1.5 * five.iqr();
                // Whisker = most extreme observation inside the fence.
                let lo = xs
                    .iter()
                    .cloned()
                    .filter(|&x| x >= fence_lo)
                    .fold(f64::INFINITY, f64::min);
                let hi = xs
                    .iter()
                    .cloned()
                    .filter(|&x| x <= fence_hi)
                    .fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            }
            WhiskerRule::Percentiles {
                lower_pct,
                upper_pct,
            } => (
                quantile(xs, lower_pct / 100.0, QuantileMethod::Interpolated)?,
                quantile(xs, upper_pct / 100.0, QuantileMethod::Interpolated)?,
            ),
        };
        // Whiskers attach to the box: for tiny samples the most extreme
        // in-fence observation can lie inside the box, so clamp to the
        // box edges (matching R's boxplot rendering).
        let lo = lo.min(five.q1);
        let hi = hi.max(five.q3);
        let outliers: Vec<f64> = xs.iter().cloned().filter(|&x| x < lo || x > hi).collect();
        let notch = median_ci(xs, 0.95).ok().map(|ci| (ci.lower, ci.upper));
        Ok(Self {
            label: label.to_owned(),
            five_number: five,
            mean,
            whisker_low: lo,
            whisker_high: hi,
            whisker_rule: rule,
            outliers,
            notch,
        })
    }

    /// Whether this box's notch overlaps another's (overlap = the median
    /// difference is *not* shown significant by the plot).
    pub fn notches_overlap(&self, other: &BoxPlotStats) -> Option<bool> {
        let (a_lo, a_hi) = self.notch?;
        let (b_lo, b_hi) = other.notch?;
        Some(!(a_hi < b_lo || b_hi < a_lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        v.push(500.0); // gross outlier
        v
    }

    #[test]
    fn min_max_whiskers() {
        let b = BoxPlotStats::from_samples("x", &sample(), WhiskerRule::MinMax).unwrap();
        assert_eq!(b.whisker_low, 1.0);
        assert_eq!(b.whisker_high, 500.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn tukey_whiskers_flag_outlier() {
        let b = BoxPlotStats::from_samples("x", &sample(), WhiskerRule::TukeyIqr).unwrap();
        assert_eq!(b.outliers, vec![500.0]);
        assert_eq!(b.whisker_high, 100.0);
        assert_eq!(b.whisker_low, 1.0);
    }

    #[test]
    fn percentile_whiskers() {
        let xs: Vec<f64> = (1..=1000).map(f64::from).collect();
        let b = BoxPlotStats::from_samples(
            "x",
            &xs,
            WhiskerRule::Percentiles {
                lower_pct: 1.0,
                upper_pct: 99.0,
            },
        )
        .unwrap();
        assert!((b.whisker_low - 10.99).abs() < 0.02);
        assert!((b.whisker_high - 990.01).abs() < 0.02);
        assert_eq!(b.outliers.len(), 20);
    }

    #[test]
    fn notches_reflect_median_significance() {
        let a: Vec<f64> = (1..=200).map(f64::from).collect();
        let b: Vec<f64> = (201..=400).map(f64::from).collect();
        let c: Vec<f64> = (5..=205).map(f64::from).collect();
        let ba = BoxPlotStats::from_samples("a", &a, WhiskerRule::TukeyIqr).unwrap();
        let bb = BoxPlotStats::from_samples("b", &b, WhiskerRule::TukeyIqr).unwrap();
        let bc = BoxPlotStats::from_samples("c", &c, WhiskerRule::TukeyIqr).unwrap();
        assert_eq!(ba.notches_overlap(&bb), Some(false)); // clearly different
        assert_eq!(ba.notches_overlap(&bc), Some(true)); // nearly identical
    }

    #[test]
    fn whisker_rule_description() {
        assert!(WhiskerRule::TukeyIqr.describe().contains("1.5 IQR"));
        assert!(WhiskerRule::Percentiles {
            lower_pct: 1.0,
            upper_pct: 99.0
        }
        .describe()
        .contains("P1"));
    }

    #[test]
    fn mean_and_five_numbers_present() {
        let b =
            BoxPlotStats::from_samples("x", &[1.0, 2.0, 3.0, 4.0], WhiskerRule::MinMax).unwrap();
        assert_eq!(b.mean, 2.5);
        assert_eq!(b.five_number.median, 2.5);
        assert_eq!(b.label, "x");
    }

    #[test]
    fn small_sample_has_no_notch() {
        let b = BoxPlotStats::from_samples("x", &[1.0, 2.0, 3.0], WhiskerRule::MinMax).unwrap();
        assert!(b.notch.is_none());
    }
}
