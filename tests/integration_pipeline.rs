//! End-to-end integration: simulate a benchmark on the machine model,
//! measure it through the LibSciBench-style harness, summarize, build a
//! report and audit it against the twelve rules.

use scibench::compare::compare_two;
use scibench::experiment::design::{Design, Factor};
use scibench::experiment::environment::{DocumentationClass, EnvironmentDoc};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench::parallel::CrossProcessSummary;
use scibench::report::{ExperimentReport, ParallelMethodology};
use scibench::rules::{Rule, RuleAudit, Verdict};
use scibench::speedup::{BaseCase, Speedup};
use scibench::units::Unit;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;

/// Measures simulated ping-pong latencies through the adaptive harness.
fn measure_pingpong(machine: &MachineSpec, seed: u64) -> Vec<f64> {
    let mut cfg = PingPongConfig::paper_64b(1);
    cfg.warmup_iterations = 0;
    let mut rng = SimRng::new(seed);
    // One sample per call so the harness sees a stream of single events
    // (the paper's recommendation in §4.2.1).
    let mut draw = move || pingpong_latencies_us(machine, &cfg, &mut rng)[0];
    let plan =
        MeasurementPlan::new("pingpong-64B")
            .warmup(16)
            .stopping(StoppingRule::AdaptiveMedianCi {
                confidence: 0.95,
                rel_error: 0.01,
                batch: 200,
                max_samples: 50_000,
            });
    let outcome = plan.run(&mut draw).expect("measurement");
    assert!(outcome.converged, "adaptive stopping should converge");
    outcome.samples
}

#[test]
fn full_pipeline_produces_rule_compliant_report() {
    let dora = MachineSpec::piz_dora();
    let pilatus = MachineSpec::pilatus();

    let dora_samples = measure_pingpong(&dora, 11);
    let pilatus_samples = measure_pingpong(&pilatus, 22);

    // Summaries through the harness.
    let outcome = scibench::experiment::measurement::MeasurementOutcome {
        name: "pingpong-64B (Piz Dora)".into(),
        warmup_samples: vec![],
        samples: dora_samples.clone(),
        converged: true,
    };
    let summary = outcome.summarize(0.95).expect("summary");
    assert!(!summary.deterministic);
    assert!(summary.median_ci.is_some());
    // Latency data is skewed: the normality check must reject and the
    // mean CI must be flagged unusable (Rule 6 in action).
    assert!(
        !summary.mean_ci_valid,
        "skewed latencies must fail the normality gate"
    );

    let comparison = compare_two(
        "Piz Dora",
        &dora_samples,
        "Pilatus",
        &pilatus_samples,
        0.95,
        &[0.1, 0.5, 0.9],
        99,
    )
    .expect("comparison");

    let env = EnvironmentDoc::from_machine(&dora)
        .document(
            DocumentationClass::Input,
            "64 B ping-pong, 2 processes on distinct nodes",
        )
        .document(
            DocumentationClass::MeasurementSetup,
            "window-synchronized, warmup 16 iterations dropped, adaptive stop at 1% median CI",
        )
        .document(DocumentationClass::CodeAvailability, "this repository")
        .not_applicable(DocumentationClass::Filesystem, "no I/O in the benchmark");

    let report = ExperimentReport::new("ping-pong latency study")
        .environment(env)
        .entry(summary, Unit::Seconds)
        .speedup(Speedup::from_times(
            comparison.median_ci_b.estimate,
            comparison.median_ci_a.estimate,
            BaseCase::OtherSystem,
        ))
        .comparison(comparison)
        .bound(scibench::bounds::ScalingBound::IdealLinear)
        .parallel(ParallelMethodology {
            processes: 2,
            synchronization: "window-based delay scheme (par. 4.2.1)".into(),
            summarization: CrossProcessSummary::Max,
            anova_checked: true,
        })
        .plot("latency density", "density", None);

    let audit = RuleAudit::check(&report);
    assert!(audit.passed(), "audit failed:\n{}", audit.render());
    // Every rule got a verdict.
    assert_eq!(audit.findings.len(), 12);
    // Rule 8 passes because quantile effects were examined.
    let r8 = audit
        .findings
        .iter()
        .find(|f| f.rule == Rule::R8RightStatistic)
        .unwrap();
    assert_eq!(r8.verdict, Verdict::Pass);

    // The rendered report contains all major sections.
    let text = report.render();
    for needle in ["Rule 9", "Rule 10", "CI(median)", "Kruskal-Wallis", "q90"] {
        assert!(text.contains(needle), "report missing {needle}");
    }
}

#[test]
fn factorial_design_drives_simulated_campaign() {
    // Two factors: system x message size; full factorial, randomized
    // order, measured end-to-end.
    let design = Design::new(vec![
        Factor::new("system", &["dora", "pilatus"]),
        Factor::numeric("bytes", &[8.0, 64.0, 512.0]),
    ]);
    let runs = design.randomized_order(2, 7);
    assert_eq!(runs.len(), 12);

    let mut medians = std::collections::BTreeMap::new();
    for point in &runs {
        let machine = match point.level(0) {
            "dora" => MachineSpec::piz_dora(),
            _ => MachineSpec::pilatus(),
        };
        let bytes: f64 = point.level(1).parse().unwrap();
        let mut cfg = PingPongConfig::paper_64b(300);
        cfg.bytes = bytes as usize;
        cfg.warmup_iterations = 0;
        let mut rng = SimRng::new(1234).fork(&format!("{}-{}", point.level(0), bytes));
        let lat = pingpong_latencies_us(&machine, &cfg, &mut rng);
        let med = scibench_stats::quantile::median(&lat).unwrap();
        medians
            .entry((point.level(0).to_owned(), bytes as usize))
            .or_insert(med);
    }

    // Larger messages are slower on both systems.
    for sys in ["dora", "pilatus"] {
        let m8 = medians[&(sys.to_owned(), 8)];
        let m512 = medians[&(sys.to_owned(), 512)];
        assert!(m512 > m8, "{sys}: {m512} vs {m8}");
    }
}

#[test]
fn timer_audit_gates_short_intervals() {
    // The timer substrate and the paper's 4.2.1 thresholds, end to end.
    use scibench_timer::clock::WallClock;
    use scibench_timer::resolution::{audit_timer, TimerProfile};

    let clock = WallClock::new();
    let profile = TimerProfile::measure(&clock, 10_000);
    // A 1 ms interval is fine on any real machine.
    assert!(audit_timer(&profile, 1_000_000.0).acceptable());
    // A sub-overhead interval cannot be fine.
    let too_short = profile.overhead_ns.max(profile.resolution_ns) * 0.5;
    if too_short > 0.0 {
        assert!(!audit_timer(&profile, too_short).acceptable());
    }
}

#[test]
fn deterministic_workload_reports_deterministically() {
    // A quiet machine produces deterministic measurements; Rule 5 says
    // the report must flag that.
    let machine = MachineSpec::test_machine(4);
    let mut cfg = PingPongConfig::paper_64b(100);
    cfg.node_b = 1;
    cfg.warmup_iterations = 0;
    let mut rng = SimRng::new(5);
    let latencies = pingpong_latencies_us(&machine, &cfg, &mut rng);
    let outcome = scibench::experiment::measurement::MeasurementOutcome {
        name: "quiet-pingpong".into(),
        warmup_samples: vec![],
        samples: latencies,
        converged: true,
    };
    let summary = outcome.summarize(0.95).unwrap();
    assert!(summary.deterministic);
    assert!(summary.render().contains("[deterministic]"));
}
