//! Factorial experimental design (§4 of the paper).
//!
//! "We recommend factorial design to compare the influence of multiple
//! factors, each at various different levels, on the measured
//! performance." A [`Design`] is a set of named [`Factor`]s with explicit
//! levels; [`Design::full_factorial`] enumerates the cross product and
//! [`Design::randomized_order`] shuffles the run order with a seeded RNG —
//! the §4.1.1 randomization defence against uncontrollable environment
//! parameters ("Hunold et al. randomly change the execution order").

use serde::{Deserialize, Serialize};

use scibench_sim::rng::SimRng;

/// One experimental factor with its levels, e.g. "processes" at
/// `[2, 4, 8, ...]` or "system" at `["dora", "pilatus"]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Factor {
    /// Factor name.
    pub name: String,
    /// The levels (values) this factor takes, as strings for generality;
    /// numeric factors can use [`Factor::numeric`].
    pub levels: Vec<String>,
}

impl Factor {
    /// Creates a factor from string levels.
    pub fn new(name: &str, levels: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            levels: levels.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Creates a numeric factor.
    pub fn numeric(name: &str, levels: &[f64]) -> Self {
        Self {
            name: name.to_owned(),
            levels: levels.iter().map(|v| format!("{v}")).collect(),
        }
    }

    /// Number of levels.
    pub fn arity(&self) -> usize {
        self.levels.len()
    }
}

/// One point of the design: a (factor → level) assignment, stored as
/// parallel vectors in factor order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunPoint {
    /// The chosen level per factor, in design factor order.
    pub levels: Vec<String>,
}

impl RunPoint {
    /// The level of factor `i`.
    pub fn level(&self, i: usize) -> &str {
        &self.levels[i]
    }
}

/// A factorial design over a set of factors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    factors: Vec<Factor>,
}

impl Design {
    /// Creates a design; every factor must have at least one level.
    ///
    /// # Panics
    /// Panics on an empty factor list or a factor without levels.
    pub fn new(factors: Vec<Factor>) -> Self {
        assert!(!factors.is_empty(), "a design needs at least one factor");
        for f in &factors {
            assert!(!f.levels.is_empty(), "factor {} has no levels", f.name);
        }
        Self { factors }
    }

    /// The factors of the design.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Total number of points in the full factorial (product of arities).
    pub fn size(&self) -> usize {
        self.factors.iter().map(Factor::arity).product()
    }

    /// Enumerates the full factorial in lexicographic order (last factor
    /// varies fastest).
    pub fn full_factorial(&self) -> Vec<RunPoint> {
        let mut points = Vec::with_capacity(self.size());
        let mut idx = vec![0usize; self.factors.len()];
        loop {
            points.push(RunPoint {
                levels: idx
                    .iter()
                    .zip(&self.factors)
                    .map(|(&i, f)| f.levels[i].clone())
                    .collect(),
            });
            // Odometer increment.
            let mut k = self.factors.len();
            loop {
                if k == 0 {
                    return points;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < self.factors[k].arity() {
                    break;
                }
                idx[k] = 0;
                if k == 0 {
                    return points;
                }
            }
        }
    }

    /// Full factorial with `replications` copies of every point, in a
    /// seeded random order (§4.1.1: model uncontrollable parameters by
    /// randomizing the execution order).
    pub fn randomized_order(&self, replications: usize, seed: u64) -> Vec<RunPoint> {
        assert!(replications > 0, "need at least one replication");
        let base = self.full_factorial();
        let mut runs = Vec::with_capacity(base.len() * replications);
        for _ in 0..replications {
            runs.extend(base.iter().cloned());
        }
        let mut rng = SimRng::new(seed).fork("design-order");
        rng.shuffle(&mut runs);
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_design() -> Design {
        Design::new(vec![
            Factor::new("system", &["dora", "pilatus"]),
            Factor::numeric("procs", &[2.0, 4.0, 8.0]),
        ])
    }

    #[test]
    fn size_is_product_of_arities() {
        assert_eq!(demo_design().size(), 6);
    }

    #[test]
    fn full_factorial_enumerates_all_points() {
        let points = demo_design().full_factorial();
        assert_eq!(points.len(), 6);
        // Lexicographic: last factor fastest.
        assert_eq!(points[0].levels, vec!["dora", "2"]);
        assert_eq!(points[1].levels, vec!["dora", "4"]);
        assert_eq!(points[3].levels, vec!["pilatus", "2"]);
        // All distinct.
        let mut set = points.clone();
        set.dedup();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn single_factor_design() {
        let d = Design::new(vec![Factor::new("x", &["a"])]);
        assert_eq!(d.size(), 1);
        assert_eq!(d.full_factorial().len(), 1);
    }

    #[test]
    fn randomized_order_covers_everything() {
        let d = demo_design();
        let runs = d.randomized_order(3, 42);
        assert_eq!(runs.len(), 18);
        // Every point appears exactly 3 times.
        for p in d.full_factorial() {
            let count = runs.iter().filter(|r| **r == p).count();
            assert_eq!(count, 3, "{:?}", p);
        }
    }

    #[test]
    fn randomized_order_is_shuffled_but_deterministic() {
        let d = demo_design();
        let a = d.randomized_order(2, 1);
        let b = d.randomized_order(2, 1);
        let c = d.randomized_order(2, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Not in trivially repeated order.
        let sequential: Vec<RunPoint> = {
            let base = d.full_factorial();
            base.iter().cloned().chain(base.iter().cloned()).collect()
        };
        assert_ne!(a, sequential);
    }

    #[test]
    fn run_point_accessor() {
        let points = demo_design().full_factorial();
        assert_eq!(points[0].level(0), "dora");
        assert_eq!(points[0].level(1), "2");
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn empty_design_rejected() {
        Design::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "has no levels")]
    fn empty_factor_rejected() {
        Design::new(vec![Factor::new("x", &[])]);
    }
}
