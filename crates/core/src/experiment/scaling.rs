//! Strong and weak scaling study descriptors (§4.2 of the paper).
//!
//! "Papers should always indicate if experiments are using strong scaling
//! (constant problem size) or weak scaling (problem size grows with the
//! number of processes). Furthermore, the function for weak scaling should
//! be specified. [...] when scaling multi-dimensional domains, papers need
//! to document which dimensions are scaled."
//!
//! [`ScalingStudy`] forces those declarations into the type: a weak-scaling
//! study cannot exist without its scaling function, and multi-dimensional
//! domains carry the per-dimension growth flags. `describe()` renders the
//! exact sentence a paper must contain.

use serde::{Deserialize, Serialize};

/// How the problem size relates to the process count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalingMode {
    /// Constant total problem size.
    Strong,
    /// Problem size grows with `p` under an explicit function.
    Weak(WeakScalingFn),
}

/// The weak-scaling growth function (the thing papers forget to state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeakScalingFn {
    /// Total size = base · p (constant work per process).
    Linear,
    /// An n-dimensional domain where only the flagged dimensions grow;
    /// total size = base · p^(growing/total) per dimension semantics:
    /// each growing dimension is scaled by `p^(1/growing)`.
    PerDimension {
        /// One flag per domain dimension: does this dimension grow?
        grows: Vec<bool>,
    },
    /// A custom function `size(p) = base · factor(p)` described textually
    /// and tabulated at the study's process counts.
    Custom {
        /// Human-readable description, e.g. "size ∝ p log p
        /// (non-work-conserving sort)".
        description: String,
        /// `factor[i]` multiplies the base size at `process_counts[i]`.
        factors: Vec<f64>,
    },
}

/// A declared scaling study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingStudy {
    /// Strong or weak (with its function).
    pub mode: ScalingMode,
    /// Problem size at p = 1 (elements, grid points, …).
    pub base_problem_size: f64,
    /// The process counts of the study, ascending.
    pub process_counts: Vec<usize>,
}

impl ScalingStudy {
    /// Declares a strong-scaling study.
    pub fn strong(base_problem_size: f64, process_counts: Vec<usize>) -> Self {
        assert!(base_problem_size > 0.0, "problem size must be positive");
        assert!(
            !process_counts.is_empty(),
            "need at least one process count"
        );
        Self {
            mode: ScalingMode::Strong,
            base_problem_size,
            process_counts,
        }
    }

    /// Declares a weak-scaling study with an explicit function.
    pub fn weak(base_problem_size: f64, process_counts: Vec<usize>, f: WeakScalingFn) -> Self {
        assert!(base_problem_size > 0.0, "problem size must be positive");
        assert!(
            !process_counts.is_empty(),
            "need at least one process count"
        );
        if let WeakScalingFn::Custom { factors, .. } = &f {
            assert_eq!(
                factors.len(),
                process_counts.len(),
                "custom weak scaling needs one factor per process count"
            );
        }
        if let WeakScalingFn::PerDimension { grows } = &f {
            assert!(!grows.is_empty(), "domain needs at least one dimension");
            assert!(grows.iter().any(|&g| g), "at least one dimension must grow");
        }
        Self {
            mode: ScalingMode::Weak(f),
            base_problem_size,
            process_counts,
        }
    }

    /// Total problem size at `p` processes.
    ///
    /// `p` must be one of the study's process counts for custom weak
    /// scaling (tabulated); any `p ≥ 1` otherwise.
    pub fn problem_size_at(&self, p: usize) -> Option<f64> {
        assert!(p >= 1);
        match &self.mode {
            ScalingMode::Strong => Some(self.base_problem_size),
            ScalingMode::Weak(WeakScalingFn::Linear) => Some(self.base_problem_size * p as f64),
            ScalingMode::Weak(WeakScalingFn::PerDimension { grows }) => {
                // Each growing dimension scales by p^(1/g): total domain
                // scales by p (work-conserving) but only along the
                // flagged dimensions.
                let g = grows.iter().filter(|&&x| x).count() as f64;
                let per_dim = (p as f64).powf(1.0 / g);
                Some(self.base_problem_size * per_dim.powf(g))
            }
            ScalingMode::Weak(WeakScalingFn::Custom { factors, .. }) => {
                let idx = self.process_counts.iter().position(|&q| q == p)?;
                Some(self.base_problem_size * factors[idx])
            }
        }
    }

    /// Work per process at `p` processes (the weak-scaling invariant).
    pub fn work_per_process_at(&self, p: usize) -> Option<f64> {
        Some(self.problem_size_at(p)? / p as f64)
    }

    /// The declaration sentence for the paper / report.
    pub fn describe(&self) -> String {
        match &self.mode {
            ScalingMode::Strong => format!(
                "strong scaling: constant problem size {} over p in {:?}",
                self.base_problem_size, self.process_counts
            ),
            ScalingMode::Weak(WeakScalingFn::Linear) => format!(
                "weak scaling: problem size scales linearly with p (base {}, p in {:?})",
                self.base_problem_size, self.process_counts
            ),
            ScalingMode::Weak(WeakScalingFn::PerDimension { grows }) => {
                let dims: Vec<String> = grows
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| format!("dim{}={}", i, if g { "scaled" } else { "fixed" }))
                    .collect();
                format!(
                    "weak scaling: {}-dimensional domain, {} (base {}, p in {:?})",
                    grows.len(),
                    dims.join(", "),
                    self.base_problem_size,
                    self.process_counts
                )
            }
            ScalingMode::Weak(WeakScalingFn::Custom { description, .. }) => format!(
                "weak scaling ({description}): base {}, p in {:?}",
                self.base_problem_size, self.process_counts
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_keeps_size_constant() {
        let s = ScalingStudy::strong(1e6, vec![1, 2, 4, 8]);
        for p in [1usize, 2, 4, 8] {
            assert_eq!(s.problem_size_at(p), Some(1e6));
        }
        // Work per process shrinks.
        assert_eq!(s.work_per_process_at(8), Some(1.25e5));
        assert!(s.describe().contains("strong scaling"));
    }

    #[test]
    fn linear_weak_scaling_keeps_work_constant() {
        let s = ScalingStudy::weak(1e5, vec![1, 4, 16], WeakScalingFn::Linear);
        for p in [1usize, 4, 16] {
            assert_eq!(s.work_per_process_at(p), Some(1e5));
        }
        assert_eq!(s.problem_size_at(16), Some(1.6e6));
        assert!(s.describe().contains("linearly"));
    }

    #[test]
    fn per_dimension_scaling_is_work_conserving() {
        // 3D domain, scale 2 of 3 dimensions.
        let s = ScalingStudy::weak(
            1e6,
            vec![1, 8, 64],
            WeakScalingFn::PerDimension {
                grows: vec![true, true, false],
            },
        );
        // Total still scales with p.
        assert!((s.problem_size_at(8).unwrap() - 8e6).abs() < 1e-3);
        let d = s.describe();
        assert!(d.contains("dim0=scaled"));
        assert!(d.contains("dim2=fixed"));
    }

    #[test]
    fn custom_scaling_is_tabulated() {
        let s = ScalingStudy::weak(
            1000.0,
            vec![1, 2, 4],
            WeakScalingFn::Custom {
                description: "p log2 p (non-work-conserving)".into(),
                factors: vec![1.0, 2.0, 8.0],
            },
        );
        assert_eq!(s.problem_size_at(4), Some(8000.0));
        assert_eq!(s.problem_size_at(3), None); // not in the study
        assert!(s.describe().contains("non-work-conserving"));
    }

    #[test]
    #[should_panic(expected = "one factor per process count")]
    fn custom_scaling_requires_matching_factors() {
        ScalingStudy::weak(
            1.0,
            vec![1, 2],
            WeakScalingFn::Custom {
                description: "x".into(),
                factors: vec![1.0],
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one dimension must grow")]
    fn per_dimension_requires_growth() {
        ScalingStudy::weak(
            1.0,
            vec![1, 2],
            WeakScalingFn::PerDimension {
                grows: vec![false, false],
            },
        );
    }

    #[test]
    #[should_panic(expected = "problem size must be positive")]
    fn rejects_nonpositive_size() {
        ScalingStudy::strong(0.0, vec![1]);
    }
}
