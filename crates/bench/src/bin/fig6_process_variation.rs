//! Regenerates Figure 6: per-process variation of MPI_Reduce on 64 ranks.

use std::process::ExitCode;

use scibench_bench::figures::fig6_variation;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig6_process_variation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let runs = samples_from_env(1_000);
    let fig = fig6_variation::compute(64, runs, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let path = output::write_csv("fig6_variation", &fig.dataset())?;
    println!("per-rank boxes: {}", path.display());
    Ok(())
}
