//! Per-process clock offset and drift (§4.2.1 "Parallel time").
//!
//! "Most of today's parallel systems are asynchronous and do not have a
//! common clock source. Furthermore, clock drift between processes could
//! impact measurements" — this module gives every simulated process its
//! own local clock, defined by an offset and a drift rate relative to
//! global (true) simulation time. The window-based synchronization scheme
//! the paper proposes is implemented on top of these clocks in the core
//! crate.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// A process-local clock: `local(t) = offset + t · (1 + drift)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingClock {
    /// Offset from global time at t = 0, nanoseconds.
    pub offset_ns: f64,
    /// Fractional frequency error; e.g. 1e-6 = 1 µs/s fast.
    pub drift: f64,
}

impl DriftingClock {
    /// A perfect clock (zero offset, zero drift).
    pub fn perfect() -> Self {
        Self {
            offset_ns: 0.0,
            drift: 0.0,
        }
    }

    /// Samples a realistic clock: offsets up to ±`max_offset_ns`, drift
    /// rates normally distributed with standard deviation `drift_sd`
    /// (typical quartz crystals drift by a few ppm).
    pub fn sample(max_offset_ns: f64, drift_sd: f64, rng: &mut SimRng) -> Self {
        Self {
            offset_ns: rng.uniform_range(-max_offset_ns, max_offset_ns),
            drift: rng.normal(0.0, drift_sd),
        }
    }

    /// Converts a global timestamp to this process's local reading.
    pub fn local_from_global(&self, global_ns: f64) -> f64 {
        self.offset_ns + global_ns * (1.0 + self.drift)
    }

    /// Converts a local reading back to global time.
    pub fn global_from_local(&self, local_ns: f64) -> f64 {
        (local_ns - self.offset_ns) / (1.0 + self.drift)
    }

    /// Instantaneous skew between two processes' local readings of the
    /// same global instant.
    pub fn skew_to(&self, other: &DriftingClock, global_ns: f64) -> f64 {
        self.local_from_global(global_ns) - other.local_from_global(global_ns)
    }

    /// This clock after an injected step change of `jump_ns` (e.g. an NTP
    /// correction or a fault-injected clock jump): all subsequent local
    /// readings shift by the jump.
    pub fn with_jump(&self, jump_ns: f64) -> DriftingClock {
        DriftingClock {
            offset_ns: self.offset_ns + jump_ns,
            drift: self.drift,
        }
    }
}

/// The local clocks of a whole process group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockEnsemble {
    clocks: Vec<DriftingClock>,
}

impl ClockEnsemble {
    /// Perfect clocks for `p` processes (noise-free baseline).
    pub fn perfect(p: usize) -> Self {
        Self {
            clocks: vec![DriftingClock::perfect(); p],
        }
    }

    /// Samples `p` drifting clocks.
    pub fn sample(p: usize, max_offset_ns: f64, drift_sd: f64, rng: &mut SimRng) -> Self {
        Self {
            clocks: (0..p)
                .map(|_| DriftingClock::sample(max_offset_ns, drift_sd, rng))
                .collect(),
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// The clock of process `rank`.
    pub fn clock(&self, rank: usize) -> &DriftingClock {
        &self.clocks[rank]
    }

    /// The ensemble as observed at global time `at_ns` under a fault
    /// schedule: every process on a node whose scheduled clock jump has
    /// already fired reads a clock shifted by that jump. `node_of[rank]`
    /// maps each process to its node.
    pub fn with_fault_jumps(
        &self,
        schedule: &crate::fault::FaultSchedule,
        node_of: &[usize],
        at_ns: f64,
    ) -> ClockEnsemble {
        assert_eq!(
            node_of.len(),
            self.clocks.len(),
            "node_of must map every rank"
        );
        ClockEnsemble {
            clocks: self
                .clocks
                .iter()
                .zip(node_of)
                .map(|(clock, &node)| match schedule.clock_jump_of(node) {
                    Some(jump) if jump.at_ns <= at_ns => clock.with_jump(jump.jump_ns),
                    _ => *clock,
                })
                .collect(),
        }
    }

    /// Largest pairwise skew across the ensemble at a global instant.
    pub fn max_skew_ns(&self, global_ns: f64) -> f64 {
        let readings: Vec<f64> = self
            .clocks
            .iter()
            .map(|c| c.local_from_global(global_ns))
            .collect();
        let min = readings.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = readings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = DriftingClock::perfect();
        assert_eq!(c.local_from_global(12345.0), 12345.0);
        assert_eq!(c.global_from_local(12345.0), 12345.0);
    }

    #[test]
    fn conversions_round_trip() {
        let c = DriftingClock {
            offset_ns: 5_000.0,
            drift: 2e-6,
        };
        for &t in &[0.0, 1e3, 1e9, 1e12] {
            let back = c.global_from_local(c.local_from_global(t));
            assert!((back - t).abs() < 1e-3, "t = {t}");
        }
    }

    #[test]
    fn drift_grows_with_time() {
        let fast = DriftingClock {
            offset_ns: 0.0,
            drift: 1e-6,
        };
        let slow = DriftingClock {
            offset_ns: 0.0,
            drift: -1e-6,
        };
        let at_1s = fast.skew_to(&slow, 1e9);
        let at_10s = fast.skew_to(&slow, 1e10);
        assert!((at_1s - 2_000.0).abs() < 1e-6, "skew {at_1s}");
        assert!((at_10s - 20_000.0).abs() < 1e-5);
    }

    #[test]
    fn sampled_clocks_within_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            let c = DriftingClock::sample(10_000.0, 1e-6, &mut rng);
            assert!(c.offset_ns.abs() <= 10_000.0);
            assert!(c.drift.abs() < 1e-5);
        }
    }

    #[test]
    fn ensemble_skew() {
        let e = ClockEnsemble {
            clocks: vec![
                DriftingClock {
                    offset_ns: 0.0,
                    drift: 0.0,
                },
                DriftingClock {
                    offset_ns: 100.0,
                    drift: 0.0,
                },
                DriftingClock {
                    offset_ns: -50.0,
                    drift: 0.0,
                },
            ],
        };
        assert_eq!(e.max_skew_ns(0.0), 150.0);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn perfect_ensemble_has_zero_skew() {
        let e = ClockEnsemble::perfect(8);
        assert_eq!(e.max_skew_ns(1e9), 0.0);
    }

    #[test]
    fn jump_shifts_all_later_readings() {
        let c = DriftingClock::perfect().with_jump(500.0);
        assert_eq!(c.local_from_global(0.0), 500.0);
        assert_eq!(c.local_from_global(1000.0), 1500.0);
    }

    #[test]
    fn fault_jumps_apply_only_after_their_instant() {
        use crate::fault::{FaultPlan, FaultSchedule};
        use crate::rng::SimRng;
        let plan = FaultPlan {
            clock_jump_prob: 1.0,
            clock_jump_ns: 1_000.0,
            clock_jump_window_ns: 100.0,
            ..FaultPlan::none()
        };
        let schedule = FaultSchedule::compile(&plan, 4, &SimRng::new(5));
        let ensemble = ClockEnsemble::perfect(4);
        let node_of = [0usize, 1, 2, 3];
        // Before any jump fires the ensemble is unchanged.
        let before = ensemble.with_fault_jumps(&schedule, &node_of, -1.0);
        assert_eq!(before.max_skew_ns(0.0), 0.0);
        // After the window every node has jumped by ±1000 ns; skew is
        // nonzero unless every jump happened to share a direction.
        let after = ensemble.with_fault_jumps(&schedule, &node_of, 200.0);
        let readings: Vec<f64> = (0..4)
            .map(|r| after.clock(r).local_from_global(0.0))
            .collect();
        for r in &readings {
            assert_eq!(r.abs(), 1_000.0);
        }
    }

    #[test]
    fn sampled_ensemble_is_deterministic() {
        let mut r1 = SimRng::new(3);
        let mut r2 = SimRng::new(3);
        let a = ClockEnsemble::sample(4, 1000.0, 1e-6, &mut r1);
        let b = ClockEnsemble::sample(4, 1000.0, 1e-6, &mut r2);
        assert_eq!(a, b);
    }
}
