//! Regenerates every table and figure in one run, writing all text
//! renditions and CSV exports into `figures/`.
//!
//! Figures are independent of each other, so they execute concurrently on
//! the deterministic work-stealing pool ([`scibench::parallel::pool`]);
//! each figure derives its randomness from the shared seed alone, so the
//! output files are identical no matter how the figures are scheduled.
//! Progress messages are buffered per figure and printed in figure order.
//!
//! `SCIBENCH_SAMPLES` scales the ping-pong sample counts (default 1M,
//! matching the paper).
//!
//! `--trace <path>` records a low-overhead event trace of the whole run
//! (one [`category::FIGURE`] span per figure plus the pool's task and
//! scheduling events), validates it, writes it as chrome://tracing JSON
//! (or JSONL when the path ends in `.jsonl`), and prints the
//! self-accounting harness-overhead report (Rules 4–5).
//!
//! `--journal <path>` records each completed figure in a crash-consistent
//! journal ([`scibench::experiment::journal`]); `--resume` replays the
//! journal first and skips every figure already completed by an earlier
//! (possibly killed) invocation, re-printing its cached progress lines.
//! Without `--resume` an existing journal is discarded and the run starts
//! fresh. The journal is keyed to the sample count, seed and crate
//! version, so a stale journal from a different configuration is refused
//! rather than silently reused.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Mutex;

use scibench::experiment::journal::{point_key, Journal, JournalKey, JournalMeta, PointRecord};
use scibench::experiment::{Design, Factor, PointFate, RunPoint};
use scibench::parallel::pool;
use scibench_bench::figures::*;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};
use scibench_trace::{
    category, lane_of, to_chrome_json, to_jsonl, validate_chrome_trace, validate_jsonl, ArgValue,
    OverheadProbe, OverheadReport, Tracer,
};

/// Figure lanes live above the pool-worker lanes (0..threads) and the
/// campaign lanes (`1 << 16` block) so the three families never collide.
const FIGURE_LANE_BASE: u32 = 2 << 16;

/// One figure job: renders and writes its artifacts, returning the
/// progress lines to print (in figure order) on success.
type FigureJob = Box<dyn Fn() -> Result<Vec<String>, String> + Send + Sync>;

fn save(name: &str, text: &str) -> Result<String, String> {
    let path = output::figures_dir().join(format!("{name}.txt"));
    fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(format!("wrote {}", path.display()))
}

fn csv(name: &str, dataset: &scibench::data::DataSet) -> Result<String, String> {
    let path = output::write_csv(name, dataset).map_err(|e| format!("csv {name}: {e}"))?;
    Ok(format!("wrote {}", path.display()))
}

/// Journal identity: a journal written by a different crate version must
/// never be resumed (the figure code may have changed).
const CODE_VERSION: &str = concat!("all-figures-", env!("CARGO_PKG_VERSION"));

/// Parsed command line.
#[derive(Debug, Default)]
struct CliArgs {
    trace: Option<PathBuf>,
    journal: Option<PathBuf>,
    resume: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("all_figures: {e}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("all_figures: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut cli = CliArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                cli.trace = Some(PathBuf::from(it.next().ok_or("--trace requires a path")?));
            }
            "--journal" => {
                cli.journal = Some(PathBuf::from(it.next().ok_or("--journal requires a path")?));
            }
            "--resume" => cli.resume = true,
            other => {
                return Err(format!(
                    "unknown argument {other:?} \
                     (usage: all_figures [--trace <path>] [--journal <path> [--resume]])"
                ))
            }
        }
    }
    if cli.resume && cli.journal.is_none() {
        return Err("--resume requires --journal <path>".into());
    }
    Ok(cli)
}

/// Per-run durability state when `--journal` is active.
struct FigureJournal {
    /// The open journal; figures append from pool threads.
    journal: Mutex<Journal>,
    /// Content-addressed key per figure (by job index).
    keys: Vec<JournalKey>,
    /// Progress lines of figures already completed in an earlier
    /// invocation (by job index); `None` means the figure must run.
    cached: Vec<Option<Vec<String>>>,
}

fn run(cli: CliArgs) -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = cli.trace;
    let big = samples_from_env(1_000_000);
    let seed = DEFAULT_SEED;
    fs::create_dir_all(output::figures_dir())?;
    // Probe the primitive timer/record costs *before* the run so the
    // self-accounting report reflects an unloaded machine.
    let tracer = trace_path.as_ref().map(|_| Tracer::new());
    let probe = tracer.as_ref().map(|_| OverheadProbe::measure());

    let jobs: Vec<(&'static str, FigureJob)> = vec![
        (
            "fig1_hpl",
            Box::new(move || {
                let f = fig1_hpl::compute(50, seed).map_err(|e| e.to_string())?;
                Ok(vec![
                    save("fig1_hpl", &f.render())?,
                    csv("fig1_hpl", &f.dataset())?,
                ])
            }),
        ),
        (
            "table1",
            Box::new(|| {
                let t = table1::compute();
                Ok(vec![
                    save("table1_survey", &t.render())?,
                    csv("table1_scores", &t.dataset())?,
                ])
            }),
        ),
        (
            "fig2_normalization",
            Box::new(move || {
                let f = fig2_normalization::compute(big, seed).map_err(|e| e.to_string())?;
                Ok(vec![
                    save("fig2_normalization", &f.render())?,
                    csv("fig2_qq", &f.dataset())?,
                ])
            }),
        ),
        (
            "fig3_significance",
            Box::new(move || {
                let f = fig3_significance::compute(big, seed).map_err(|e| e.to_string())?;
                let mut msgs = vec![
                    save("fig3_significance", &f.render())?,
                    csv("fig3_significance", &f.dataset())?,
                ];
                // The reproduction audits itself against the twelve rules.
                let audit = scibench::rules::RuleAudit::check(&f.report());
                msgs.push(save("fig3_rule_audit", &audit.render())?);
                if !audit.passed() {
                    return Err(format!(
                        "figure 3 report failed its own audit:\n{}",
                        audit.render()
                    ));
                }
                Ok(msgs)
            }),
        ),
        (
            "fig4_quantreg",
            Box::new(move || {
                let f = fig4_quantreg::compute(big, seed).map_err(|e| e.to_string())?;
                Ok(vec![
                    save("fig4_quantile_regression", &f.render())?,
                    csv("fig4_quantreg", &f.dataset())?,
                ])
            }),
        ),
        (
            "fig5_reduce",
            Box::new(move || {
                let f = fig5_reduce::compute(1_000, seed).map_err(|e| e.to_string())?;
                Ok(vec![
                    save("fig5_reduce_scaling", &f.render())?,
                    csv("fig5_reduce", &f.dataset())?,
                ])
            }),
        ),
        (
            "fig6_variation",
            Box::new(move || {
                let f = fig6_variation::compute(64, 1_000, seed).map_err(|e| e.to_string())?;
                Ok(vec![
                    save("fig6_process_variation", &f.render())?,
                    csv("fig6_variation", &f.dataset())?,
                ])
            }),
        ),
        (
            "fig7ab_bounds",
            Box::new(move || {
                let f = fig7ab_bounds::compute(10, seed).map_err(|e| e.to_string())?;
                Ok(vec![
                    save("fig7ab_bounds", &f.render())?,
                    csv("fig7ab_bounds", &f.dataset())?,
                ])
            }),
        ),
        (
            "fig7c_plots",
            Box::new(move || {
                let f = fig7c_plots::compute(big, seed).map_err(|e| e.to_string())?;
                Ok(vec![
                    save("fig7c_plots", &f.render())?,
                    csv("fig7c_plots", &f.dataset())?,
                ])
            }),
        ),
        (
            "means_example",
            Box::new(|| {
                let ex = means_example::compute().map_err(|e| e.to_string())?;
                Ok(vec![save("means_worked_example", &ex.render())?])
            }),
        ),
    ];

    let figure_journal = match &cli.journal {
        None => None,
        Some(path) => {
            if !cli.resume {
                // A fresh (non-resume) run must not silently absorb an
                // old journal's records.
                match fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(format!("removing stale {}: {e}", path.display()).into()),
                }
            }
            // One synthetic factor whose levels are the figure names: the
            // journal machinery then keys each figure like a design point.
            let names: Vec<&str> = jobs.iter().map(|(name, _)| *name).collect();
            let design = Design::new(vec![Factor::new("figure", &names)]);
            let meta = JournalMeta::new(&design, seed, CODE_VERSION, &format!("samples={big}"));
            let (journal, snapshot) = Journal::open_resume(path, &meta)?;
            let keys: Vec<JournalKey> = names
                .iter()
                .map(|name| {
                    point_key(
                        &meta,
                        &RunPoint {
                            levels: vec![(*name).to_owned()],
                        },
                    )
                })
                .collect();
            let cached: Vec<Option<Vec<String>>> = keys
                .iter()
                .map(|k| snapshot.record_for(*k).map(|r| r.notes.clone()))
                .collect();
            Some(FigureJournal {
                journal: Mutex::new(journal),
                keys,
                cached,
            })
        }
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let results = pool::run_indexed_traced(jobs.len(), threads, tracer.as_ref(), |i| {
        // Each figure gets its own lane: a job runs entirely on one
        // worker, so the per-job lane has exactly one writer.
        let mut lane = lane_of(tracer.as_ref(), FIGURE_LANE_BASE + i as u32);
        let start = lane.begin();
        let out = match &figure_journal {
            Some(ctx) => match &ctx.cached[i] {
                // Completed by an earlier invocation: replay, don't rerun.
                Some(notes) => Ok(notes.clone()),
                None => run_journaled(ctx, i, jobs[i].0, &jobs[i].1),
            },
            None => (jobs[i].1)(),
        };
        lane.end(
            start,
            category::FIGURE,
            jobs[i].0,
            &[("ok", ArgValue::Bool(out.is_ok()))],
        );
        out
    });

    // Resolve in figure order: progress lines stay stable across thread
    // counts and the first failing figure (by index) wins.
    for (result, (name, _)) in results.into_iter().zip(&jobs) {
        match result {
            Ok(Ok(messages)) => {
                for line in messages {
                    println!("{line}");
                }
            }
            Ok(Err(e)) => return Err(format!("{name}: {e}").into()),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    if let (Some(ctx), Some(path)) = (&figure_journal, &cli.journal) {
        ctx.journal.lock().expect("journal lock poisoned").sync()?;
        let replayed = ctx.cached.iter().filter(|c| c.is_some()).count();
        println!(
            "journal {}: {replayed} figures replayed, {} executed",
            path.display(),
            jobs.len() - replayed
        );
    }

    if let (Some(path), Some(tracer), Some(probe)) = (&trace_path, &tracer, &probe) {
        export_trace(path, tracer, probe)?;
    }

    println!("\nall figures regenerated (seed {seed:#x}, {big} samples for 1M-sample figures)");
    Ok(())
}

/// Runs one figure under the journal: `begin` frame before, completed
/// [`PointRecord`] (with the progress lines as replayable notes) after.
/// A figure that fails writes no record, so a rerun retries it.
fn run_journaled(
    ctx: &FigureJournal,
    index: usize,
    name: &str,
    job: &FigureJob,
) -> Result<Vec<String>, String> {
    let key = ctx.keys[index];
    ctx.journal
        .lock()
        .expect("journal lock poisoned")
        .append_begin(index, key)
        .map_err(|e| e.to_string())?;
    let messages = job()?;
    let record = PointRecord {
        index,
        key,
        levels: vec![name.to_owned()],
        fate: PointFate::Completed {
            attempts: 1,
            samples_dropped: 0,
        },
        panics_contained: 0,
        outcome: None,
        notes: messages.clone(),
        sketch: None,
    };
    ctx.journal
        .lock()
        .expect("journal lock poisoned")
        .append_point(&record)
        .map_err(|e| e.to_string())?;
    Ok(messages)
}

/// Drains, validates, and writes the trace, then prints the Rule 4/5
/// self-accounting report. Every failure is a typed error (non-zero
/// exit), including the export I/O.
fn export_trace(
    path: &PathBuf,
    tracer: &Tracer,
    probe: &OverheadProbe,
) -> Result<(), Box<dyn std::error::Error>> {
    let trace = tracer.drain();
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let text = if jsonl {
        to_jsonl(&trace)
    } else {
        to_chrome_json(&trace)
    };
    // Validate before writing so a malformed export never lands on disk.
    let validated = if jsonl {
        validate_jsonl(&text)
    } else {
        validate_chrome_trace(&text)
    }
    .map_err(|e| format!("trace failed validation: {e}"))?;
    fs::write(path, &text).map_err(|e| format!("writing trace {}: {e}", path.display()))?;
    println!(
        "wrote {} ({validated} events, {})",
        path.display(),
        if jsonl {
            "JSONL"
        } else {
            "chrome://tracing JSON"
        }
    );

    let report = OverheadReport::from_trace(&trace, probe, category::FIGURE);
    let rendered = report.render();
    print!("\n{rendered}");
    let report_path = output::figures_dir().join("harness_overhead.txt");
    fs::write(&report_path, &rendered)
        .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
    println!("wrote {}", report_path.display());
    Ok(())
}
