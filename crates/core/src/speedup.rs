//! Speedup with an explicit base case (Rule 1 of the paper).
//!
//! "When publishing parallel speedup, report if the base case is a single
//! parallel process or best serial execution, as well as the absolute
//! execution performance of the base case." — a [`Speedup`] cannot be
//! constructed without both pieces of information, and its `Display`
//! implementation always prints them.

use std::fmt;

use serde::{Deserialize, Serialize};

/// What the speedup is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseCase {
    /// The parallel code run with a single process — often slower than
    /// the best serial implementation, and therefore flattering.
    SingleParallelProcess,
    /// The best known serial implementation of the problem.
    BestSerial,
    /// Another system entirely (cross-system comparison, `s = T_B / T_A`).
    OtherSystem,
}

impl fmt::Display for BaseCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BaseCase::SingleParallelProcess => "single parallel process",
            BaseCase::BestSerial => "best serial implementation",
            BaseCase::OtherSystem => "other system",
        };
        f.write_str(s)
    }
}

/// A speedup measurement carrying its base case.
///
/// ```
/// use scibench::speedup::{Speedup, BaseCase};
/// let s = Speedup::from_times(1.2, 1.0, BaseCase::BestSerial);
/// assert!((s.factor() - 1.2).abs() < 1e-12);
/// // Rule 1: the rendered form names the base case and its absolute time.
/// assert!(s.to_string().contains("best serial"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Speedup {
    /// Execution time of the base case, seconds.
    pub base_time_s: f64,
    /// Execution time of the improved/parallel configuration, seconds.
    pub new_time_s: f64,
    /// What the base case is.
    pub base_case: BaseCase,
}

impl Speedup {
    /// Creates a speedup from two execution times.
    ///
    /// # Panics
    /// Panics unless both times are positive and finite — a speedup from
    /// garbage times is how papers end up unreproducible.
    pub fn from_times(base_time_s: f64, new_time_s: f64, base_case: BaseCase) -> Self {
        assert!(
            base_time_s.is_finite() && base_time_s > 0.0,
            "base time must be positive, got {base_time_s}"
        );
        assert!(
            new_time_s.is_finite() && new_time_s > 0.0,
            "new time must be positive, got {new_time_s}"
        );
        Self {
            base_time_s,
            new_time_s,
            base_case,
        }
    }

    /// The speedup factor `s = T_base / T_new`.
    pub fn factor(&self) -> f64 {
        self.base_time_s / self.new_time_s
    }

    /// Relative gain `Δ = s − 1` ("system A is 20 % faster than B" for
    /// `s = 1.2`).
    pub fn relative_gain(&self) -> f64 {
        self.factor() - 1.0
    }

    /// Whether the configuration actually got slower.
    pub fn is_slowdown(&self) -> bool {
        self.factor() < 1.0
    }

    /// Parallel efficiency against `p` processes: `s / p`.
    pub fn efficiency(&self, p: usize) -> f64 {
        assert!(p > 0);
        self.factor() / p as f64
    }

    /// Whether the speedup is super-linear for `p` processes — §5.1:
    /// "Super-linear scaling which has been observed in practice is an
    /// indication of suboptimal resource use for small p".
    pub fn is_super_linear(&self, p: usize) -> bool {
        self.factor() > p as f64
    }
}

impl fmt::Display for Speedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rule 1: the base case and its absolute performance are part of
        // the number.
        write!(
            f,
            "{:.2}x vs {} ({:.6} s)",
            self.factor(),
            self.base_case,
            self.base_time_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_gain() {
        let s = Speedup::from_times(1.2, 1.0, BaseCase::BestSerial);
        assert!((s.factor() - 1.2).abs() < 1e-12);
        assert!((s.relative_gain() - 0.2).abs() < 1e-12);
        assert!(!s.is_slowdown());
    }

    #[test]
    fn slowdown_detected() {
        let s = Speedup::from_times(1.0, 2.0, BaseCase::OtherSystem);
        assert!(s.is_slowdown());
        assert!((s.factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_and_super_linearity() {
        let s = Speedup::from_times(10.0, 1.0, BaseCase::SingleParallelProcess);
        assert!((s.efficiency(16) - 0.625).abs() < 1e-12);
        assert!(!s.is_super_linear(16));
        assert!(s.is_super_linear(8));
    }

    #[test]
    fn display_reports_base_case_and_absolute_time() {
        let s = Speedup::from_times(2.0, 1.0, BaseCase::BestSerial);
        let text = s.to_string();
        assert!(text.contains("2.00x"), "{text}");
        assert!(text.contains("best serial"), "{text}");
        assert!(text.contains("2.0"), "{text}"); // absolute base time
    }

    #[test]
    fn base_case_display() {
        assert_eq!(
            BaseCase::SingleParallelProcess.to_string(),
            "single parallel process"
        );
        assert_eq!(BaseCase::OtherSystem.to_string(), "other system");
    }

    #[test]
    #[should_panic(expected = "base time must be positive")]
    fn rejects_zero_base() {
        Speedup::from_times(0.0, 1.0, BaseCase::BestSerial);
    }

    #[test]
    #[should_panic(expected = "new time must be positive")]
    fn rejects_nan_new() {
        Speedup::from_times(1.0, f64::NAN, BaseCase::BestSerial);
    }
}
