//! Minimal offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the exact trait surface this workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::gen::<f64>()`, and `Rng::gen_range` over integer and float ranges. `StdRng`
//! is xoshiro256++ seeded through splitmix64 — a different (but deterministic and
//! statistically strong) stream than upstream's ChaCha12.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from the full "standard" distribution
/// (`[0, 1)` for floats, all values for integers/bool).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// splitmix64 step: the seed expander used by `seed_from_u64`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via splitmix64. Deterministic and fast; not the upstream
    /// ChaCha12 stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_fixed_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn unit_floats_in_range() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..10_000 {
                let x: f64 = rng.gen();
                assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..10_000 {
                let i = rng.gen_range(3usize..17);
                assert!((3..17).contains(&i));
                let j = rng.gen_range(0usize..=4);
                assert!(j <= 4);
                let f = rng.gen_range(-2.0f64..5.0);
                assert!((-2.0..5.0).contains(&f));
            }
        }

        #[test]
        fn mean_of_uniform_near_half() {
            let mut rng = StdRng::seed_from_u64(1);
            let n = 100_000;
            let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
            let mean = sum / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
        }
    }
}
