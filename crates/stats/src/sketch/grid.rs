//! A fixed-grid histogram/ECDF sketch with bit-associative merge.
//!
//! Unlike the t-digest, the grid is chosen **up front** and shared by all
//! workers, so merging is pure `u64` counter addition — associative and
//! commutative down to the last bit, proptested over arbitrary merge
//! trees. Samples outside `[lo, hi)` land in explicit underflow/overflow
//! bins (total, never silently dropped), and non-finite samples are
//! quarantined like everywhere else in this crate.

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::histogram::Histogram;
use crate::{f64_from_hex, f64_to_hex};

use super::{parse_u64, MergeableSummary};

/// The shared grid every worker must agree on: `bins` equal-width bins
/// covering `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Right edge of the last bin (exclusive; exactly-`hi` samples count
    /// as overflow).
    pub hi: f64,
    /// Number of interior bins.
    pub bins: usize,
}

/// Mergeable fixed-grid histogram/ECDF sketch; see the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSketch {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    n: u64,
    non_finite: u64,
}

impl GridSketch {
    /// Creates an empty sketch over `spec`. Errors when the range is not
    /// finite and ascending, `bins` is zero, or the per-bin width
    /// degenerates to zero.
    pub fn new(spec: GridSpec) -> StatsResult<Self> {
        if !(spec.lo.is_finite() && spec.hi.is_finite() && spec.hi > spec.lo) {
            return Err(StatsError::InvalidParameter {
                name: "grid range",
                value: spec.hi - spec.lo,
            });
        }
        if spec.bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        let width = (spec.hi - spec.lo) / spec.bins as f64;
        if !(width.is_finite() && width > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "bin width",
                value: width,
            });
        }
        Ok(Self {
            lo: spec.lo,
            width,
            counts: vec![0; spec.bins],
            underflow: 0,
            overflow: 0,
            n: 0,
            non_finite: 0,
        })
    }

    /// Left edge of the grid.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Uniform bin width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Number of interior bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Interior bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimated resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.counts.capacity() * 8 + std::mem::size_of::<Self>()
    }

    /// ECDF estimate `F(x)`: fraction of finite samples ≤ `x`, linearly
    /// interpolated within the containing bin. Underflow mass is treated
    /// as lying just below `lo` and overflow mass just above `hi`, so the
    /// curve is 0 before the grid and 1 after it — the resolution limit of
    /// a fixed grid, disclosed rather than hidden.
    pub fn ecdf(&self, x: f64) -> StatsResult<f64> {
        if self.n == 0 {
            return Err(StatsError::EmptySample);
        }
        if x.is_nan() {
            return Err(StatsError::NonFiniteSample);
        }
        if x < self.lo {
            return Ok(0.0);
        }
        let hi = self.lo + self.width * self.counts.len() as f64;
        if x >= hi {
            return Ok(1.0);
        }
        let pos = (x - self.lo) / self.width;
        let idx = (pos as usize).min(self.counts.len() - 1);
        let frac = (pos - idx as f64).clamp(0.0, 1.0);
        let below: u64 = self.counts[..idx].iter().sum();
        let partial = self.counts[idx] as f64 * frac;
        Ok((self.underflow as f64 + below as f64 + partial) / self.n as f64)
    }

    /// Inverse-ECDF `p`-quantile, linearly interpolated within the
    /// containing bin and clamped to `[lo, hi]` when the target rank falls
    /// into underflow/overflow mass (the grid cannot resolve beyond its
    /// edges; pair with a [`super::TDigest`] when tails matter).
    pub fn quantile(&self, p: f64) -> StatsResult<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidProbability {
                name: "p",
                value: p,
            });
        }
        if self.n == 0 {
            return Err(StatsError::EmptySample);
        }
        let target = p * self.n as f64;
        if target <= self.underflow as f64 {
            return Ok(self.lo);
        }
        let mut cum = self.underflow as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cum) / c as f64;
                return Ok(self.lo + (i as f64 + frac) * self.width);
            }
            cum = next;
        }
        Ok(self.lo + self.width * self.counts.len() as f64)
    }

    /// A reporting [`Histogram`] over the interior bins (underflow and
    /// overflow are not part of the plotted range; read them from
    /// [`GridSketch::underflow`]/[`GridSketch::overflow`] and disclose).
    pub fn to_histogram(&self) -> Histogram {
        let bins = self.counts.len();
        let edges = (0..=bins)
            .map(|i| self.lo + i as f64 * self.width)
            .collect();
        Histogram {
            edges,
            counts: self.counts.clone(),
            n: self.counts.iter().sum::<u64>() as usize,
        }
    }
}

impl MergeableSummary for GridSketch {
    fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.n += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    fn merge_from(&mut self, other: &Self) -> StatsResult<()> {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.width.to_bits() != other.width.to_bits()
            || self.counts.len() != other.counts.len()
        {
            return Err(StatsError::MismatchedSketch("grid geometry differs"));
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.n += other.n;
        self.non_finite += other.non_finite;
        Ok(())
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    fn to_record(&self) -> String {
        let counts: Vec<String> = self.counts.iter().map(|c| c.to_string()).collect();
        format!(
            "gs1;{};{};{};{};{};{};{}",
            f64_to_hex(self.lo),
            f64_to_hex(self.width),
            self.n,
            self.non_finite,
            self.underflow,
            self.overflow,
            counts.join(",")
        )
    }

    fn from_record(record: &str) -> StatsResult<Self> {
        let parts: Vec<&str> = record.split(';').collect();
        if parts.len() != 8 || parts[0] != "gs1" {
            return Err(StatsError::MalformedSketch("expected 8-part gs1 record"));
        }
        let mut counts = Vec::new();
        if !parts[7].is_empty() {
            for c in parts[7].split(',') {
                counts.push(parse_u64(c)?);
            }
        }
        if counts.is_empty() {
            return Err(StatsError::MalformedSketch("grid record has no bins"));
        }
        Ok(Self {
            lo: f64_from_hex(parts[1])?,
            width: f64_from_hex(parts[2])?,
            n: parse_u64(parts[3])?,
            non_finite: parse_u64(parts[4])?,
            underflow: parse_u64(parts[5])?,
            overflow: parse_u64(parts[6])?,
            counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 20,
        }
    }

    #[test]
    fn counts_underflow_overflow_and_interior() {
        let mut g = GridSketch::new(spec()).unwrap();
        for &x in &[-1.0, 0.0, 0.4, 5.0, 9.99, 10.0, 42.0, f64::NAN] {
            g.push(x);
        }
        assert_eq!(g.count(), 7);
        assert_eq!(g.non_finite_count(), 1);
        assert_eq!(g.underflow(), 1);
        assert_eq!(g.overflow(), 2); // 10.0 is exclusive, 42.0 is beyond
        assert_eq!(g.counts().iter().sum::<u64>(), 4);
        assert_eq!(g.counts()[0], 2); // 0.0 and 0.4
    }

    #[test]
    fn ecdf_and_quantile_are_consistent() {
        let mut g = GridSketch::new(spec()).unwrap();
        let xs: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64 * 0.01).collect();
        for &x in &xs {
            g.push(x);
        }
        // Uniform on [0, 10): F(5) ≈ 0.5, q(0.25) ≈ 2.5.
        assert!((g.ecdf(5.0).unwrap() - 0.5).abs() < 0.01);
        assert!((g.quantile(0.25).unwrap() - 2.5).abs() < 0.05);
        assert_eq!(g.ecdf(-3.0).unwrap(), 0.0);
        assert_eq!(g.ecdf(11.0).unwrap(), 1.0);
        // Quantile targets inside the underflow mass clamp to lo.
        let mut with_under = GridSketch::new(spec()).unwrap();
        with_under.push(-5.0);
        with_under.push(1.0);
        assert_eq!(with_under.quantile(0.2).unwrap(), 0.0);
    }

    #[test]
    fn merge_is_exact_counter_addition() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.173).sin() * 6.0 + 4.0)
            .collect();
        let mut whole = GridSketch::new(spec()).unwrap();
        let mut a = GridSketch::new(spec()).unwrap();
        let mut b = GridSketch::new(spec()).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        // Both merge orders give bits identical to the single-pass sketch.
        let mut ab = a.clone();
        ab.merge_from(&b).unwrap();
        let mut ba = b.clone();
        ba.merge_from(&a).unwrap();
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        assert_eq!(ab.to_record(), whole.to_record());
    }

    #[test]
    fn mismatched_grids_refuse_to_merge() {
        let mut a = GridSketch::new(spec()).unwrap();
        let b = GridSketch::new(GridSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 21,
        })
        .unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(StatsError::MismatchedSketch(_))
        ));
        let c = GridSketch::new(GridSpec {
            lo: 0.5,
            hi: 10.5,
            bins: 20,
        })
        .unwrap();
        assert!(matches!(
            a.merge_from(&c),
            Err(StatsError::MismatchedSketch(_))
        ));
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let mut g = GridSketch::new(spec()).unwrap();
        for &x in &[-2.0, 3.3, f64::INFINITY, 7.7, 100.0] {
            g.push(x);
        }
        let record = g.to_record();
        let back = GridSketch::from_record(&record).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.to_record(), record);
        assert!(GridSketch::from_record("gs1;zz").is_err());
    }

    #[test]
    fn invalid_specs_rejected() {
        for bad in [
            GridSpec {
                lo: 1.0,
                hi: 1.0,
                bins: 4,
            },
            GridSpec {
                lo: 0.0,
                hi: f64::INFINITY,
                bins: 4,
            },
            GridSpec {
                lo: 0.0,
                hi: 1.0,
                bins: 0,
            },
        ] {
            assert!(GridSketch::new(bad).is_err(), "{bad:?} accepted");
        }
        let empty = GridSketch::new(spec()).unwrap();
        assert!(matches!(empty.ecdf(1.0), Err(StatsError::EmptySample)));
        assert!(matches!(empty.quantile(0.5), Err(StatsError::EmptySample)));
    }

    #[test]
    fn histogram_view_is_total() {
        let mut g = GridSketch::new(spec()).unwrap();
        g.push(1.0);
        g.push(100.0); // overflow, not in the histogram view
        let h = g.to_histogram();
        assert_eq!(h.n, 1);
        assert_eq!(h.edges.len(), 21);
        assert!(h.density(2).is_finite());
    }
}
