//! The tracer: per-lane, lock-free append-only buffers merged post-run.
//!
//! # Design
//!
//! A [`Tracer`] is shared (by `&` reference) across workers; each worker
//! obtains a [`LocalTracer`] for its *lane* and records into a plain
//! `Vec` it owns exclusively — no atomics, no locks, no sharing on the
//! hot path. The only synchronisation is a single mutex push when a lane
//! flushes (on drop or explicitly), which happens once per worker per
//! run, not once per event.
//!
//! # Zero cost when disabled
//!
//! A disabled tracer hands out detached [`LocalTracer`]s whose every
//! method is a branch on an `Option` discriminant: no clock read, no
//! allocation, no buffer growth. [`Tracer::disabled`] is the default
//! wired through `run_indexed` and `run_campaign`, so untraced callers
//! pay one predictable branch per would-be event.
//!
//! # Determinism
//!
//! Recording never touches RNG state or sample values, so traced results
//! are bit-identical to untraced ones by construction. Event *counts* in
//! non-[`category::SCHED`](crate::event::category::SCHED) categories are
//! a pure function of seed and design; `SCHED` events (steals, worker
//! occupancy) depend on scheduling and are excluded from determinism
//! checks.

use parking_lot::Mutex;
use scibench_timer::{Clock, WallClock};

use crate::event::{ArgValue, EventKind, EventName, TraceEvent};
use crate::trace::Trace;

/// Shared trace collector. Cheap to share by reference across threads.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    clock: WallClock,
    sink: Mutex<Vec<Vec<TraceEvent>>>,
}

impl Tracer {
    /// An enabled tracer with its time origin at construction.
    pub fn new() -> Self {
        Self {
            enabled: true,
            clock: WallClock::new(),
            sink: Mutex::new(Vec::new()),
        }
    }

    /// A disabled tracer: every lane it hands out is a no-op.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            clock: WallClock::new(),
            sink: Mutex::new(Vec::new()),
        }
    }

    /// Whether this tracer records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since this tracer's origin (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            self.clock.now_ns()
        } else {
            0
        }
    }

    /// A recording handle for `lane`. Detached (no-op) when disabled.
    pub fn lane(&self, lane: u32) -> LocalTracer<'_> {
        LocalTracer {
            parent: if self.enabled { Some(self) } else { None },
            lane,
            seq: 0,
            buf: Vec::new(),
        }
    }

    /// Merges all flushed lanes into one trace, sorted by
    /// `(t_ns, lane, seq)`. Lanes flushed after this call start a new
    /// trace; calling `drain` twice yields the remainder.
    pub fn drain(&self) -> Trace {
        let lanes = std::mem::take(&mut *self.sink.lock());
        let mut events: Vec<TraceEvent> = lanes.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.t_ns, e.lane, e.seq));
        Trace { events }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// A lane handle for an optional tracer: `None` yields a detached no-op
/// lane, sparing callers an `if let` at every instrumentation site.
pub fn lane_of(tracer: Option<&Tracer>, lane: u32) -> LocalTracer<'_> {
    match tracer {
        Some(t) => t.lane(lane),
        None => LocalTracer {
            parent: None,
            lane,
            seq: 0,
            buf: Vec::new(),
        },
    }
}

/// Opaque span start token returned by [`LocalTracer::begin`].
///
/// Holding the start time in a token (rather than a guard with `Drop`)
/// keeps span recording explicit and panic-transparent: if the traced
/// section unwinds, the span is simply never recorded.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart {
    t_ns: u64,
}

/// Per-worker event buffer. Not `Send`-shared: each worker owns its own.
///
/// All recording methods are no-ops (a single branch) when the lane is
/// detached. The buffer flushes to the parent tracer on drop.
#[derive(Debug)]
pub struct LocalTracer<'a> {
    parent: Option<&'a Tracer>,
    lane: u32,
    seq: u64,
    buf: Vec<TraceEvent>,
}

impl<'a> LocalTracer<'a> {
    /// A permanently detached lane (records nothing).
    pub fn noop() -> LocalTracer<'static> {
        LocalTracer {
            parent: None,
            lane: 0,
            seq: 0,
            buf: Vec::new(),
        }
    }

    /// Whether this lane records events. Callers with expensive dynamic
    /// names (`format!`) should gate on this to stay zero-cost when
    /// tracing is off.
    pub fn is_on(&self) -> bool {
        self.parent.is_some()
    }

    /// The lane index.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Nanoseconds since the parent tracer's origin (0 when detached).
    pub fn now_ns(&self) -> u64 {
        match self.parent {
            Some(t) => t.now_ns(),
            None => 0,
        }
    }

    /// Marks the start of a span. Costs one clock read (none detached).
    pub fn begin(&self) -> SpanStart {
        SpanStart {
            t_ns: self.now_ns(),
        }
    }

    /// Closes a span started with [`LocalTracer::begin`].
    pub fn end(
        &mut self,
        start: SpanStart,
        cat: &'static str,
        name: impl Into<EventName>,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.parent.is_none() {
            return;
        }
        let now = self.now_ns();
        let dur_ns = now.saturating_sub(start.t_ns);
        self.push(
            cat,
            name.into(),
            start.t_ns,
            EventKind::Span { dur_ns },
            args,
        );
    }

    /// Records a point-in-time marker.
    pub fn instant(
        &mut self,
        cat: &'static str,
        name: impl Into<EventName>,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.parent.is_none() {
            return;
        }
        let t_ns = self.now_ns();
        self.push(cat, name.into(), t_ns, EventKind::Instant, args);
    }

    /// Records a counter sample.
    pub fn counter(&mut self, cat: &'static str, name: impl Into<EventName>, value: f64) {
        if self.parent.is_none() {
            return;
        }
        let t_ns = self.now_ns();
        self.push(cat, name.into(), t_ns, EventKind::Counter { value }, &[]);
    }

    fn push(
        &mut self,
        cat: &'static str,
        name: EventName,
        t_ns: u64,
        kind: EventKind,
        args: &[(&'static str, ArgValue)],
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.buf.push(TraceEvent {
            cat,
            name,
            t_ns,
            lane: self.lane,
            seq,
            kind,
            args: args.to_vec(),
        });
    }

    /// Pushes this lane's buffer to the parent tracer. Called on drop;
    /// explicit flushing is only needed to hand events over early.
    pub fn flush(&mut self) {
        if let Some(parent) = self.parent {
            if !self.buf.is_empty() {
                parent.sink.lock().push(std::mem::take(&mut self.buf));
            }
        }
    }
}

impl Drop for LocalTracer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::category;

    #[test]
    fn records_and_merges_lanes() {
        let tracer = Tracer::new();
        {
            let mut a = tracer.lane(0);
            let start = a.begin();
            a.instant(category::POOL, "mark", &[("i", ArgValue::U64(3))]);
            a.end(start, category::POOL, "task", &[]);
            let mut b = tracer.lane(1);
            b.counter(category::CAMPAIGN, "samples", 12.0);
        }
        let trace = tracer.drain();
        assert_eq!(trace.events.len(), 3);
        // Sorted by (t_ns, lane, seq); the span starts at or before the
        // instant recorded after it.
        assert!(trace
            .events
            .windows(2)
            .all(|w| (w[0].t_ns, w[0].lane, w[0].seq) <= (w[1].t_ns, w[1].lane, w[1].seq)));
        let span = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Span { .. }))
            .unwrap();
        assert_eq!(span.name, "task");
        assert!(span.dur_ns().is_some());
    }

    #[test]
    fn disabled_records_nothing() {
        let tracer = Tracer::disabled();
        {
            let mut lane = tracer.lane(0);
            assert!(!lane.is_on());
            let start = lane.begin();
            lane.instant(category::POOL, "mark", &[]);
            lane.counter(category::POOL, "c", 1.0);
            lane.end(start, category::POOL, "task", &[]);
        }
        assert!(tracer.drain().events.is_empty());
        assert_eq!(tracer.now_ns(), 0);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn lane_of_none_is_detached() {
        let mut lane = lane_of(None, 7);
        assert!(!lane.is_on());
        lane.instant(category::POOL, "mark", &[]);
        let noop = LocalTracer::noop();
        assert!(!noop.is_on());
    }

    #[test]
    fn drain_twice_yields_later_lanes() {
        let tracer = Tracer::new();
        {
            let mut a = tracer.lane(0);
            a.instant(category::POOL, "first", &[]);
        }
        assert_eq!(tracer.drain().events.len(), 1);
        {
            let mut b = tracer.lane(0);
            b.instant(category::POOL, "second", &[]);
        }
        let later = tracer.drain();
        assert_eq!(later.events.len(), 1);
        assert_eq!(later.events[0].name, "second");
    }
}
