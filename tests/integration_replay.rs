//! Cross-crate validation of the compiled-schedule replay engine: the
//! figure pipelines and campaign runners that now replay compiled
//! schedules must produce exactly the results the interpreted hot loops
//! produced, independent of how many pool threads execute them.

use scibench::experiment::campaign::{run_campaign, run_campaign_scoped, CampaignConfig};
use scibench::experiment::design::{Design, Factor};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench_bench::figures::{fig5_reduce, fig6_variation};
use scibench_bench::DEFAULT_SEED;
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::collectives::reduce;
use scibench_sim::compile::{CompiledSchedule, ReplayCtx};
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// The interpreted Figure 5 inner loop, kept here as the reference the
/// compiled pipeline must reproduce bit-for-bit.
fn fig5_interpreted_point(p: usize, runs: usize, seed: u64) -> Vec<f64> {
    let machine = MachineSpec::piz_daint();
    let mut rng = SimRng::new(seed).fork_indexed("fig5", p as u64);
    let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut rng);
    let mut out = Vec::with_capacity(runs);
    for _ in 0..runs {
        let outcome = reduce(&machine, &alloc, 8, &mut rng);
        out.push(outcome.max_ns().unwrap() * 1e-3);
    }
    out
}

#[test]
fn fig5_pipeline_matches_interpreted_reference() {
    let runs = 40;
    let fig = fig5_reduce::compute(runs, DEFAULT_SEED).unwrap();
    for pt in &fig.points {
        let reference = fig5_interpreted_point(pt.p, runs, DEFAULT_SEED);
        assert_eq!(
            bits(&pt.completion_us),
            bits(&reference),
            "fig5 diverged from interpreter at p={}",
            pt.p
        );
    }
}

#[test]
fn fig5_pipeline_is_reproducible_across_invocations() {
    // The pool parallelizes over process counts; per-p RNG forks make the
    // result invariant under scheduling, so two runs agree exactly.
    let a = fig5_reduce::compute(25, 7).unwrap();
    let b = fig5_reduce::compute(25, 7).unwrap();
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(bits(&x.completion_us), bits(&y.completion_us), "p={}", x.p);
    }
}

#[test]
fn fig6_pipeline_matches_interpreted_reference() {
    let (p, runs, seed) = (32usize, 50usize, DEFAULT_SEED);
    let fig = fig6_variation::compute(p, runs, seed).unwrap();

    let machine = MachineSpec::piz_daint();
    let mut rng = SimRng::new(seed).fork("fig6");
    let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut rng);
    let mut per_rank_us: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); p];
    for _ in 0..runs {
        let outcome = reduce(&machine, &alloc, 8, &mut rng);
        for (r, &t) in outcome.per_rank_done_ns.iter().enumerate() {
            per_rank_us[r].push(t * 1e-3);
        }
    }
    for (r, (got, want)) in fig.per_rank_us.iter().zip(&per_rank_us).enumerate() {
        assert_eq!(bits(got), bits(want), "fig6 diverged at rank {r}");
    }
}

#[test]
fn scoped_campaign_with_replay_is_thread_invariant() {
    // A campaign whose measurement replays a compiled schedule through the
    // per-worker scratch arena must agree bit-for-bit with the interpreted
    // campaign at every thread count.
    let machine = MachineSpec::piz_daint();
    let design = Design::new(vec![Factor::numeric("procs", &[4.0, 9.0, 16.0, 33.0])]);
    let plan = MeasurementPlan::new("reduce").stopping(StoppingRule::FixedCount(30));

    let interpreted = run_campaign(
        &design,
        &plan,
        &CampaignConfig {
            seed: 21,
            threads: 1,
        },
        |point, rng| {
            let p = point.level(0).parse::<f64>().unwrap() as usize;
            let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, rng);
            reduce(&machine, &alloc, 8, rng).max_ns().unwrap()
        },
    )
    .unwrap();

    for threads in [1usize, 2, 8] {
        let replayed = run_campaign_scoped(
            &design,
            &plan,
            &CampaignConfig { seed: 21, threads },
            ReplayCtx::new,
            |ctx, point, rng| {
                let p = point.level(0).parse::<f64>().unwrap() as usize;
                let alloc =
                    Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, rng);
                let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, 8);
                let done = schedule.replay_into(ctx, rng);
                done.iter().cloned().reduce(f64::max).unwrap()
            },
        )
        .unwrap();
        assert_eq!(interpreted.runs.len(), replayed.runs.len());
        for (a, b) in interpreted.runs.iter().zip(&replayed.runs) {
            assert_eq!(
                bits(&a.outcome.samples),
                bits(&b.outcome.samples),
                "threads={threads}"
            );
        }
    }
}
