//! Time sources.
//!
//! All timing code in the workspace is written against the [`Clock`] trait
//! so that the same measurement harness runs on real wall-clock time in
//! production and on a deterministic [`VirtualClock`] inside the simulator
//! and the test suite.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// A monotonic nanosecond time source.
pub trait Clock {
    /// Current time in nanoseconds since an arbitrary but fixed origin.
    fn now_ns(&self) -> u64;

    /// Convenience: current time in seconds.
    fn now_secs(&self) -> f64 {
        self.now_ns() as f64 * 1e-9
    }
}

/// The real wall clock, backed by `std::time::Instant`.
///
/// `Instant` is monotonic and on mainstream platforms reads the same
/// high-resolution counters (e.g. `CLOCK_MONOTONIC` / TSC) that
/// LibSciBench's assembly timers target.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock with its origin at the time of the call.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced deterministic clock.
///
/// The simulator advances it as simulated work "executes"; the measurement
/// harness reads it exactly as it would read a [`WallClock`]. Reads are
/// exact (no jitter) unless a nonzero `granularity` is configured, which
/// truncates reads to model a timer with finite resolution.
#[derive(Debug)]
pub struct VirtualClock {
    now_ns: u64,
    granularity_ns: u64,
}

impl VirtualClock {
    /// Creates a clock at t = 0 with perfect (1 ns) resolution.
    pub fn new() -> Self {
        Self {
            now_ns: 0,
            granularity_ns: 1,
        }
    }

    /// Creates a clock whose reads are truncated to multiples of
    /// `granularity_ns`, modelling a coarse timer.
    pub fn with_granularity(granularity_ns: u64) -> Self {
        Self {
            now_ns: 0,
            granularity_ns: granularity_ns.max(1),
        }
    }

    /// Advances the clock by `delta_ns`.
    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns += delta_ns;
    }

    /// Advances the clock by a floating-point number of seconds
    /// (negative deltas are ignored; clocks are monotonic).
    pub fn advance_secs(&mut self, delta_secs: f64) {
        if delta_secs > 0.0 {
            self.now_ns += (delta_secs * 1e9).round() as u64;
        }
    }

    /// Sets the absolute time; must not move backwards.
    pub fn set_ns(&mut self, t_ns: u64) {
        debug_assert!(t_ns >= self.now_ns, "virtual clock must be monotonic");
        self.now_ns = self.now_ns.max(t_ns);
    }

    /// The configured read granularity in nanoseconds.
    pub fn granularity_ns(&self) -> u64 {
        self.granularity_ns
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        (self.now_ns / self.granularity_ns) * self.granularity_ns
    }
}

/// A shareable, thread-safe handle to a [`VirtualClock`].
///
/// Cloning shares the underlying clock, which is what a group of simulated
/// processes on one node observes.
#[derive(Debug, Clone, Default)]
pub struct SharedVirtualClock {
    inner: Arc<Mutex<VirtualClock>>,
}

impl SharedVirtualClock {
    /// Creates a shared clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the shared clock.
    pub fn advance(&self, delta_ns: u64) {
        self.inner.lock().advance(delta_ns);
    }

    /// Sets the absolute time (monotonic).
    pub fn set_ns(&self, t_ns: u64) {
        self.inner.lock().set_ns(t_ns);
    }
}

impl Clock for SharedVirtualClock {
    fn now_ns(&self) -> u64 {
        self.inner.lock().now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_measures_real_time() {
        let c = WallClock::new();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = c.now_ns();
        assert!(b - a >= 4_000_000, "elapsed {} ns", b - a);
    }

    #[test]
    fn virtual_clock_advances_exactly() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(123);
        assert_eq!(c.now_ns(), 123);
        c.advance_secs(1e-6);
        assert_eq!(c.now_ns(), 1123);
        assert!((c.now_secs() - 1.123e-6).abs() < 1e-15);
    }

    #[test]
    fn virtual_clock_negative_advance_ignored() {
        let mut c = VirtualClock::new();
        c.advance(100);
        c.advance_secs(-5.0);
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn granularity_truncates_reads() {
        let mut c = VirtualClock::with_granularity(100);
        c.advance(250);
        assert_eq!(c.now_ns(), 200);
        c.advance(49);
        assert_eq!(c.now_ns(), 200);
        c.advance(1);
        assert_eq!(c.now_ns(), 300);
        assert_eq!(c.granularity_ns(), 100);
    }

    #[test]
    fn zero_granularity_clamped() {
        let c = VirtualClock::with_granularity(0);
        assert_eq!(c.granularity_ns(), 1);
    }

    #[test]
    fn set_ns_is_monotonic() {
        let mut c = VirtualClock::new();
        c.set_ns(500);
        assert_eq!(c.now_ns(), 500);
        // Attempting to move backwards keeps the larger value in release
        // builds (debug builds assert).
        c.set_ns(500);
        assert_eq!(c.now_ns(), 500);
    }

    #[test]
    fn shared_clock_clones_share_time() {
        let a = SharedVirtualClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_ns(), 42);
        b.advance(8);
        assert_eq!(a.now_ns(), 50);
    }

    #[test]
    fn shared_clock_across_threads() {
        let clock = SharedVirtualClock::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now_ns(), 4000);
    }
}
