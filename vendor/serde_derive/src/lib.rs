//! Offline stub of `serde_derive` (see `vendor/README.md`).
//!
//! The companion `serde` stub defines `Serialize`/`Deserialize` as empty marker
//! traits, so these derives only need to parse the item header (name + generic
//! parameter names — no `syn`/`quote` available offline) and emit empty impls.
//! `#[serde(...)]` helper attributes are declared so they are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Name and generic-parameter names of the item being derived for.
struct Header {
    name: String,
    /// Parameter names as written at use sites, e.g. `'a`, `T`, `N`.
    params: Vec<String>,
    /// Parameter declarations, e.g. `'a`, `T`, `const N: usize` (bounds dropped —
    /// the marker traits need none).
    decls: Vec<String>,
}

fn parse_header(input: TokenStream) -> Header {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`), visibility (`pub`, `pub(...)`) until `struct`/`enum`.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    if let Some(TokenTree::Ident(n)) = iter.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = name.expect("serde_derive stub: could not find type name");

    let mut params = Vec::new();
    let mut decls = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut entry: Vec<TokenTree> = Vec::new();
        let mut entries: Vec<Vec<TokenTree>> = Vec::new();
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        entries.push(std::mem::take(&mut entry));
                        continue;
                    }
                    _ => {}
                }
            }
            entry.push(tt);
        }
        if !entry.is_empty() {
            entries.push(entry);
        }
        for entry in entries {
            // Name = leading lifetime (`'x`) or the identifier after optional `const`.
            let mut head = String::new();
            let mut decl = String::new();
            let mut bounded = false;
            let mut is_const = false;
            for tt in &entry {
                let tok = tt.to_string();
                if !bounded {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '\'' => head.push('\''),
                        TokenTree::Punct(p) if p.as_char() == ':' => bounded = true,
                        TokenTree::Punct(p) if p.as_char() == '=' => bounded = true,
                        TokenTree::Ident(id) if id.to_string() == "const" => is_const = true,
                        TokenTree::Ident(_) if head.is_empty() || head == "'" => {
                            head.push_str(&tok)
                        }
                        _ => {}
                    }
                }
                // Const parameters keep their full `const N: Type` declaration.
                if is_const {
                    decl.push_str(&tok);
                    decl.push(' ');
                }
            }
            if !is_const {
                decl = head.clone();
            }
            params.push(head);
            decls.push(decl.trim().to_string());
        }
    }
    Header {
        name,
        params,
        decls,
    }
}

fn render_impl(header: &Header, trait_path: &str, extra_param: Option<&str>) -> String {
    let mut all_decls: Vec<String> = Vec::new();
    if let Some(p) = extra_param {
        all_decls.push(p.to_string());
    }
    all_decls.extend(header.decls.iter().cloned());
    let impl_generics = if all_decls.is_empty() {
        String::new()
    } else {
        format!("<{}>", all_decls.join(", "))
    };
    let ty_generics = if header.params.is_empty() {
        String::new()
    } else {
        format!("<{}>", header.params.join(", "))
    };
    format!(
        "#[automatically_derived] impl{} {} for {}{} {{}}",
        impl_generics, trait_path, header.name, ty_generics
    )
}

/// Derive the empty marker impl of `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    render_impl(&header, "::serde::Serialize", None)
        .parse()
        .expect("serde_derive stub: generated impl failed to parse")
}

/// Derive the empty marker impl of `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    render_impl(&header, "::serde::Deserialize<'de>", Some("'de"))
        .parse()
        .expect("serde_derive stub: generated impl failed to parse")
}