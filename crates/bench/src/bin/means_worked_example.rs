//! Regenerates the §3.1.1 worked mean-summarization example.

use std::process::ExitCode;

use scibench_bench::figures::means_example;

fn main() -> ExitCode {
    match means_example::compute() {
        Ok(example) => {
            println!("{}", example.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("means_worked_example: {e}");
            ExitCode::FAILURE
        }
    }
}
