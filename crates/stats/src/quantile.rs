//! Quantiles, percentiles and rank-based summaries (§3.1.3 of the paper).
//!
//! Rank measures (median, quartiles, arbitrary percentiles) are the robust
//! summaries the paper recommends for non-normally distributed measurement
//! data. Two estimators are provided: the interpolating "type 7" estimator
//! (R's default, good for plotting) and the pure rank estimator that only
//! ever returns observed values (required for the nonparametric confidence
//! intervals, which reason about order statistics).

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::{sorted_copy, validate_samples};

/// How a quantile is computed from the order statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantileMethod {
    /// Linear interpolation between closest ranks (R type 7, default in R,
    /// NumPy and Julia). May return values not present in the sample.
    Interpolated,
    /// Nearest-rank (inverse empirical CDF): always returns an observed
    /// value; this is what order-statistic confidence intervals require.
    NearestRank,
}

/// Computes the `p`-quantile (`0 ≤ p ≤ 1`) of `xs` with `method`.
pub fn quantile(xs: &[f64], p: f64, method: QuantileMethod) -> StatsResult<f64> {
    validate_samples(xs)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability {
            name: "p",
            value: p,
        });
    }
    let sorted = sorted_copy(xs);
    Ok(quantile_sorted(&sorted, p, method))
}

/// Computes the `p`-quantile of already-sorted data (ascending).
///
/// Useful when many quantiles are needed from the same sample: sort once,
/// query many times.
pub fn quantile_sorted(sorted: &[f64], p: f64, method: QuantileMethod) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&p));
    let n = sorted.len();
    match method {
        QuantileMethod::Interpolated => {
            let h = (n as f64 - 1.0) * p;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = h - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        }
        QuantileMethod::NearestRank => {
            if p == 0.0 {
                return sorted[0];
            }
            // Smallest rank r with r/n >= p.
            let r = (p * n as f64).ceil() as usize;
            sorted[r.clamp(1, n) - 1]
        }
    }
}

/// Median (50th percentile, interpolated).
pub fn median(xs: &[f64]) -> StatsResult<f64> {
    quantile(xs, 0.5, QuantileMethod::Interpolated)
}

/// Percentile helper: `percentile(xs, 99.0)` is the 99th percentile.
pub fn percentile(xs: &[f64], pct: f64) -> StatsResult<f64> {
    if !(0.0..=100.0).contains(&pct) {
        return Err(StatsError::InvalidProbability {
            name: "pct",
            value: pct,
        });
    }
    quantile(xs, pct / 100.0, QuantileMethod::Interpolated)
}

/// Median absolute deviation `MAD = median(|xᵢ − median(x)|)` — the robust
/// companion to the standard deviation (§3.1.3's "robust measures"): a
/// single arbitrarily large outlier cannot move it.
pub fn median_absolute_deviation(xs: &[f64]) -> StatsResult<f64> {
    let med = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// MAD scaled by 1.4826, a consistent estimator of the standard deviation
/// for normally distributed data.
pub fn mad_std_estimate(xs: &[f64]) -> StatsResult<f64> {
    Ok(median_absolute_deviation(xs)? * 1.4826)
}

/// The five-number summary plus IQR used by box plots (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumberSummary {
    /// Smallest observation.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

impl FiveNumberSummary {
    /// Computes the summary from raw samples.
    pub fn from_samples(xs: &[f64]) -> StatsResult<Self> {
        validate_samples(xs)?;
        let sorted = sorted_copy(xs);
        Ok(Self {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25, QuantileMethod::Interpolated),
            median: quantile_sorted(&sorted, 0.5, QuantileMethod::Interpolated),
            q3: quantile_sorted(&sorted, 0.75, QuantileMethod::Interpolated),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Inter-quartile range `Q3 − Q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// A crude skewness indicator from the quartiles (Bowley skewness):
    /// positive for right-skewed data. Returns `None` when the IQR is 0.
    pub fn bowley_skewness(&self) -> Option<f64> {
        let iqr = self.iqr();
        (iqr > 0.0).then(|| (self.q3 + self.q1 - 2.0 * self.median) / iqr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(median(&[7.0]).unwrap(), 7.0);
    }

    #[test]
    fn interpolated_matches_r_type7() {
        // R: quantile(c(1,2,3,4), 0.25) = 1.75
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.25, QuantileMethod::Interpolated).unwrap() - 1.75).abs() < 1e-12);
        // R: quantile(1:10, 0.9) = 9.1
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        assert!((quantile(&xs, 0.9, QuantileMethod::Interpolated).unwrap() - 9.1).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_returns_observed_values() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        for p in [0.0, 0.1, 0.25, 0.5, 0.77, 1.0] {
            let q = quantile(&xs, p, QuantileMethod::NearestRank).unwrap();
            assert!(xs.contains(&q), "p={p} gave unobserved {q}");
        }
        // Standard nearest-rank example: p=0.5 of 5 elems is the 3rd.
        assert_eq!(
            quantile(&xs, 0.5, QuantileMethod::NearestRank).unwrap(),
            30.0
        );
        assert_eq!(
            quantile(&xs, 1.0, QuantileMethod::NearestRank).unwrap(),
            50.0
        );
        assert_eq!(
            quantile(&xs, 0.0, QuantileMethod::NearestRank).unwrap(),
            10.0
        );
    }

    #[test]
    fn extreme_quantiles_are_min_max() {
        let xs = [5.0, -1.0, 3.0];
        assert_eq!(
            quantile(&xs, 0.0, QuantileMethod::Interpolated).unwrap(),
            -1.0
        );
        assert_eq!(
            quantile(&xs, 1.0, QuantileMethod::Interpolated).unwrap(),
            5.0
        );
    }

    #[test]
    fn percentile_99_interpretation() {
        // "at least 99% of all measurement results took at most this long"
        let xs: Vec<f64> = (1..=1000).map(f64::from).collect();
        let p99 = percentile(&xs, 99.0).unwrap();
        let below = xs.iter().filter(|&&x| x <= p99).count();
        assert!(below >= 990);
        assert!(percentile(&xs, 101.0).is_err());
    }

    #[test]
    fn quantiles_are_monotone_in_p() {
        let xs = [0.3, 9.0, 2.2, 5.5, 1.0, 7.7, 4.2];
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let q = quantile(&xs, p, QuantileMethod::Interpolated).unwrap();
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn five_number_summary_basics() {
        let xs: Vec<f64> = (1..=11).map(f64::from).collect();
        let s = FiveNumberSummary::from_samples(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 6.0);
        assert_eq!(s.max, 11.0);
        assert!((s.q1 - 3.5).abs() < 1e-12);
        assert!((s.q3 - 8.5).abs() < 1e-12);
        assert!((s.iqr() - 5.0).abs() < 1e-12);
        // Symmetric data: Bowley skewness ~ 0.
        assert!(s.bowley_skewness().unwrap().abs() < 1e-12);
    }

    #[test]
    fn bowley_skewness_detects_right_skew() {
        let xs = [1.0, 1.1, 1.2, 1.3, 5.0, 9.0];
        let s = FiveNumberSummary::from_samples(&xs).unwrap();
        assert!(s.bowley_skewness().unwrap() > 0.0);
    }

    #[test]
    fn bowley_skewness_none_for_constant() {
        let s = FiveNumberSummary::from_samples(&[2.0; 5]).unwrap();
        assert_eq!(s.bowley_skewness(), None);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(quantile(&[], 0.5, QuantileMethod::Interpolated).is_err());
        assert!(quantile(&[1.0], 1.5, QuantileMethod::Interpolated).is_err());
        assert!(quantile(&[f64::NAN], 0.5, QuantileMethod::Interpolated).is_err());
    }

    #[test]
    fn mad_is_robust_to_outliers() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mad_clean = median_absolute_deviation(&clean).unwrap();
        assert_eq!(mad_clean, 1.0);
        // A gross outlier barely moves the MAD but explodes the sd.
        let dirty = [1.0, 2.0, 3.0, 4.0, 1000.0];
        let mad_dirty = median_absolute_deviation(&dirty).unwrap();
        assert_eq!(mad_dirty, 1.0);
        let sd_dirty = crate::summary::sample_std_dev(&dirty).unwrap();
        assert!(sd_dirty > 100.0);
    }

    #[test]
    fn mad_estimates_normal_sd() {
        // Stratified standard-normal sample: MAD · 1.4826 ≈ 1.
        let xs: Vec<f64> = (0..2001)
            .map(|i| {
                let u = (i as f64 + 0.5) / 2001.0;
                crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect();
        let est = mad_std_estimate(&xs).unwrap();
        assert!((est - 1.0).abs() < 0.01, "estimate {est}");
    }
}
