//! Synchronizing parallel time measurements (§4.2.1 "Parallel time",
//! Rule 10).
//!
//! Two schemes are implemented over the simulator's drifting clocks:
//!
//! * **Barrier synchronization** ([`barrier_sync_start`]): processes leave
//!   a dissemination barrier and start "simultaneously" — but barrier exit
//!   times skew by network latency, which is why the paper calls barriers
//!   "unreliable" for timing;
//! * **Window synchronization** ([`window_sync_start`]): the paper's
//!   recommendation — "a master synchronizes the clocks of all processes
//!   and broadcasts a common start time for the operation. The start time
//!   is sufficiently far in the future that the broadcast will arrive
//!   before the time itself."
//!
//! Both return the *global* times at which each rank actually starts, so
//! experiments (and the `ablation_sync` bench) can quantify the residual
//! skew of each scheme.

use scibench_sim::alloc::Allocation;
use scibench_sim::collectives;
use scibench_sim::drift::ClockEnsemble;
use scibench_sim::machine::MachineSpec;
use scibench_sim::network::NetworkModel;
use scibench_sim::rng::SimRng;

/// Result of one synchronization attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    /// Global time at which each rank starts the measured operation.
    pub start_global_ns: Vec<f64>,
    /// Global time when the synchronization protocol itself finished
    /// (cost of synchronizing).
    pub protocol_end_ns: f64,
}

impl SyncOutcome {
    /// Maximum start-time skew across ranks — the figure of merit;
    /// smaller is better.
    pub fn max_skew_ns(&self) -> f64 {
        let min = self
            .start_global_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .start_global_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        max - min
    }
}

/// Barrier-based start: every rank begins as soon as it leaves a
/// dissemination barrier.
///
/// The skew equals the spread of barrier exit times ("neither MPI nor
/// OpenMP provides timing guarantees for their barrier calls").
pub fn barrier_sync_start(
    machine: &MachineSpec,
    alloc: &Allocation,
    rng: &mut SimRng,
) -> SyncOutcome {
    let outcome = collectives::barrier(machine, alloc, rng);
    // p >= 1 is asserted by the collective, so the outcome is never empty.
    let protocol_end_ns = outcome.max_ns().unwrap_or(0.0);
    SyncOutcome {
        start_global_ns: outcome.per_rank_done_ns,
        protocol_end_ns,
    }
}

/// Window-based start (the paper's recommended scheme).
///
/// 1. The master (rank 0) measures the offset of every worker clock with
///    a ping-pong exchange (`offset ≈ master_time − worker_time` at the
///    midpoint of the round trip, the classic Cristian method);
/// 2. it broadcasts a start deadline `window_ns` in the future (in its
///    own clock);
/// 3. each rank converts the deadline into its local clock using the
///    measured offset and busy-waits until then.
///
/// Residual skew comes only from the offset-estimation error (half the
/// round-trip asymmetry) and clock drift over the window — typically far
/// smaller than barrier skew.
pub fn window_sync_start(
    machine: &MachineSpec,
    alloc: &Allocation,
    clocks: &ClockEnsemble,
    window_ns: f64,
    rng: &mut SimRng,
) -> SyncOutcome {
    let p = alloc.ranks();
    assert_eq!(clocks.len(), p, "clock ensemble must match allocation");
    assert!(window_ns > 0.0, "window must be positive");
    let net = NetworkModel::new(machine);

    // Phase 1: offset measurement, sequential ping-pongs from the master.
    let mut global_now = 0.0f64;
    let mut offset_estimate = vec![0.0f64; p]; // worker-local minus master-local
    #[allow(clippy::needless_range_loop)] // r indexes three parallel structures
    for r in 1..p {
        let t_send = net.transfer_ns(alloc.node_of[0], alloc.node_of[r], 16, rng);
        let t_recv = net.transfer_ns(alloc.node_of[r], alloc.node_of[0], 16, rng);
        // Worker reads its clock when the request arrives.
        let worker_read_global = global_now + t_send;
        let worker_local = clocks.clock(r).local_from_global(worker_read_global);
        // Master timestamps send and receive on its own clock.
        let master_send_local = clocks.clock(0).local_from_global(global_now);
        let master_recv_local = clocks
            .clock(0)
            .local_from_global(global_now + t_send + t_recv);
        // Cristian: assume the worker read happened at the midpoint.
        let midpoint = 0.5 * (master_send_local + master_recv_local);
        offset_estimate[r] = worker_local - midpoint;
        global_now += t_send + t_recv;
    }

    // Phase 2: broadcast the deadline (master-local clock time).
    let deadline_master_local = clocks.clock(0).local_from_global(global_now) + window_ns;
    let bcast = collectives::broadcast(machine, alloc, 8, rng);
    let protocol_end_ns = global_now + bcast.max_ns().unwrap_or(0.0);

    // Phase 3: every rank waits until the deadline on its own clock.
    let mut start_global_ns = Vec::with_capacity(p);
    #[allow(clippy::needless_range_loop)] // r indexes three parallel structures
    for r in 0..p {
        let deadline_local = deadline_master_local + offset_estimate[r];
        let start_global = clocks.clock(r).global_from_local(deadline_local);
        // A rank that received the broadcast after the deadline starts
        // immediately (window too small).
        let arrival = global_now + bcast.per_rank_done_ns[r];
        start_global_ns.push(start_global.max(arrival));
    }
    SyncOutcome {
        start_global_ns,
        protocol_end_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scibench_sim::alloc::AllocationPolicy;

    fn setup(p: usize, seed: u64) -> (MachineSpec, Allocation, SimRng) {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(seed);
        let a = Allocation::one_rank_per_node(&m, p, AllocationPolicy::Packed, &mut rng);
        (m, a, rng)
    }

    #[test]
    fn barrier_skew_is_nonzero_on_noisy_machine() {
        let (m, a, mut rng) = setup(16, 1);
        let out = barrier_sync_start(&m, &a, &mut rng);
        assert_eq!(out.start_global_ns.len(), 16);
        assert!(out.max_skew_ns() > 0.0);
    }

    #[test]
    fn window_sync_beats_barrier_sync() {
        // The core claim of §4.2.1 — averaged over repetitions.
        let (m, a, mut rng) = setup(16, 2);
        let clocks = ClockEnsemble::sample(16, 50_000.0, 1e-6, &mut rng.fork("clocks"));
        let reps = 30;
        let mut barrier_total = 0.0;
        let mut window_total = 0.0;
        for _ in 0..reps {
            barrier_total += barrier_sync_start(&m, &a, &mut rng).max_skew_ns();
            window_total += window_sync_start(&m, &a, &clocks, 1e6, &mut rng).max_skew_ns();
        }
        assert!(
            window_total < barrier_total * 0.5,
            "window {window_total} vs barrier {barrier_total}"
        );
    }

    #[test]
    fn window_sync_with_perfect_clocks_has_tiny_skew() {
        let (m, a, mut rng) = setup(8, 3);
        let clocks = ClockEnsemble::perfect(8);
        let out = window_sync_start(&m, &a, &clocks, 1e6, &mut rng);
        // Perfect clocks: offsets estimated over a symmetric quiet-ish
        // link; skew bounded by noise asymmetry, far below barrier skew.
        assert!(out.max_skew_ns() < 2_000.0, "skew = {}", out.max_skew_ns());
    }

    #[test]
    fn too_small_window_degrades_to_broadcast_arrival() {
        let (m, a, mut rng) = setup(8, 4);
        let clocks = ClockEnsemble::perfect(8);
        // 1 ns window: deadline passes before the broadcast lands.
        let out = window_sync_start(&m, &a, &clocks, 1.0, &mut rng);
        // Ranks start when the broadcast arrives — skew like a broadcast
        // tree depth.
        assert!(out.max_skew_ns() > 500.0, "skew = {}", out.max_skew_ns());
    }

    #[test]
    fn start_times_are_after_protocol_on_generous_window() {
        let (m, a, mut rng) = setup(4, 5);
        let clocks = ClockEnsemble::perfect(4);
        let out = window_sync_start(&m, &a, &clocks, 1e9, &mut rng);
        for &s in &out.start_global_ns {
            assert!(s >= out.protocol_end_ns * 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "clock ensemble must match")]
    fn mismatched_clocks_panic() {
        let (m, a, mut rng) = setup(4, 6);
        let clocks = ClockEnsemble::perfect(3);
        window_sync_start(&m, &a, &clocks, 1e6, &mut rng);
    }
}
