//! Comparing statistical data (§3.2 of the paper, Rule 7: *compare
//! nondeterministic data in a statistically sound way*).
//!
//! Implements the tests the paper prescribes: Student/Welch t-tests and
//! one-factor ANOVA for normally distributed data (§3.2.1), the
//! Kruskal–Wallis one-way ANOVA on ranks for non-normal data (§3.2.2), and
//! the effect size the paper recommends over bare p-values.

use serde::{Deserialize, Serialize};

use crate::dist::{ChiSquared, ContinuousDistribution, FisherF, StudentT};
use crate::error::{StatsError, StatsResult};
use crate::rank::{average_ranks, tie_correction};
use crate::summary::{arithmetic_mean, sample_variance};
use crate::validate_samples;

/// Outcome of a two-sided hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (t, F or H depending on the test).
    pub statistic: f64,
    /// Two-sided p-value (upper-tail for F and H).
    pub p_value: f64,
    /// Degrees of freedom of the reference distribution. For
    /// Kruskal–Wallis and one-way ANOVA the second entry is used as noted
    /// in each constructor.
    pub df: (f64, f64),
}

impl TestResult {
    /// Whether the null hypothesis is rejected at significance `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

fn validate_two_groups(a: &[f64], b: &[f64]) -> StatsResult<()> {
    validate_samples(a)?;
    validate_samples(b)?;
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: a.len().min(b.len()),
        });
    }
    Ok(())
}

/// Welch's t-test for the difference of two means (unequal variances).
///
/// This is the safer default the paper's §3.2.1 setting calls for; it does
/// not assume equal standard deviations. Null hypothesis: equal means.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> StatsResult<TestResult> {
    validate_two_groups(a, b)?;
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (ma, mb) = (arithmetic_mean(a)?, arithmetic_mean(b)?);
    let (va, vb) = (sample_variance(a)?, sample_variance(b)?);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let dist = StudentT::new(df)?;
    let p = 2.0 * (1.0 - dist.cdf(t.abs()));
    Ok(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
        df: (df, 0.0),
    })
}

/// Pooled-variance Student t-test (assumes equal variances, the textbook
/// §3.2.1 variant).
pub fn pooled_t_test(a: &[f64], b: &[f64]) -> StatsResult<TestResult> {
    validate_two_groups(a, b)?;
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (ma, mb) = (arithmetic_mean(a)?, arithmetic_mean(b)?);
    let (va, vb) = (sample_variance(a)?, sample_variance(b)?);
    let df = na + nb - 2.0;
    let sp2 = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
    if sp2 <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let t = (ma - mb) / (sp2 * (1.0 / na + 1.0 / nb)).sqrt();
    let dist = StudentT::new(df)?;
    let p = 2.0 * (1.0 - dist.cdf(t.abs()));
    Ok(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
        df: (df, 0.0),
    })
}

/// Decomposition of variance produced by a one-way ANOVA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnovaResult {
    /// The F ratio `egv / igv` (inter-group over intra-group variability).
    pub f: f64,
    /// Upper-tail p-value of F under the null (all group means equal).
    pub p_value: f64,
    /// Numerator (between-groups) degrees of freedom, `k − 1`.
    pub df_between: f64,
    /// Denominator (within-groups) degrees of freedom, `N − k`.
    pub df_within: f64,
    /// Inter-group variability (mean square between).
    pub egv: f64,
    /// Intra-group variability (mean square within). The paper's effect
    /// size divides by `√igv`.
    pub igv: f64,
}

impl AnovaResult {
    /// Whether the equal-means null is rejected at significance `alpha`
    /// (i.e. F exceeds `F_crit(k−1, N−k, α)` per §3.2.1).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Effect size between groups `i` and `j` given their means:
    /// `E = (x̄ᵢ − x̄ⱼ)/√igv` (§3.2.2 "Effect Size").
    pub fn effect_size(&self, mean_i: f64, mean_j: f64) -> f64 {
        (mean_i - mean_j) / self.igv.sqrt()
    }
}

/// One-factor analysis of variance for `k ≥ 2` groups (§3.2.1).
///
/// Handles unequal group sizes; requires every group to have at least two
/// observations and a positive pooled within-group variance.
pub fn one_way_anova(groups: &[&[f64]]) -> StatsResult<AnovaResult> {
    if groups.len() < 2 {
        return Err(StatsError::InvalidGroups("ANOVA needs at least two groups"));
    }
    for g in groups {
        validate_samples(g)?;
        if g.len() < 2 {
            return Err(StatsError::TooFewSamples {
                required: 2,
                actual: g.len(),
            });
        }
    }
    let k = groups.len() as f64;
    let total_n: usize = groups.iter().map(|g| g.len()).sum();
    let nf = total_n as f64;
    let grand_mean = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / nf;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let m = arithmetic_mean(g)?;
        ss_between += g.len() as f64 * (m - grand_mean) * (m - grand_mean);
        ss_within += g.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    }
    let df_between = k - 1.0;
    let df_within = nf - k;
    let egv = ss_between / df_between;
    let igv = ss_within / df_within;
    if igv <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let f = egv / igv;
    let dist = FisherF::new(df_between, df_within)?;
    let p_value = (1.0 - dist.cdf(f)).clamp(0.0, 1.0);
    Ok(AnovaResult {
        f,
        p_value,
        df_between,
        df_within,
        egv,
        igv,
    })
}

/// Kruskal–Wallis one-way ANOVA on ranks (§3.2.2): nonparametric test for
/// equality of medians across `k ≥ 2` groups, with tie correction.
pub fn kruskal_wallis(groups: &[&[f64]]) -> StatsResult<TestResult> {
    if groups.len() < 2 {
        return Err(StatsError::InvalidGroups(
            "Kruskal-Wallis needs at least two groups",
        ));
    }
    for g in groups {
        validate_samples(g)?;
    }
    let total_n: usize = groups.iter().map(|g| g.len()).sum();
    if total_n < 3 {
        return Err(StatsError::TooFewSamples {
            required: 3,
            actual: total_n,
        });
    }
    // Rank all observations together.
    let all: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let ranks = average_ranks(&all);
    let nf = total_n as f64;

    let mut h = 0.0;
    let mut offset = 0;
    for g in groups {
        let ni = g.len() as f64;
        let rank_sum: f64 = ranks[offset..offset + g.len()].iter().sum();
        h += rank_sum * rank_sum / ni;
        offset += g.len();
    }
    h = 12.0 / (nf * (nf + 1.0)) * h - 3.0 * (nf + 1.0);

    // Tie correction.
    let c = tie_correction(&all);
    if c <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    h /= c;

    let df = groups.len() as f64 - 1.0;
    let dist = ChiSquared::new(df)?;
    let p_value = (1.0 - dist.cdf(h)).clamp(0.0, 1.0);
    Ok(TestResult {
        statistic: h,
        p_value,
        df: (df, 0.0),
    })
}

/// One pairwise comparison from a post-hoc analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairwiseComparison {
    /// Index of the first group.
    pub i: usize,
    /// Index of the second group.
    pub j: usize,
    /// The underlying Welch t-test.
    pub test: TestResult,
    /// Bonferroni-adjusted p-value (`min(1, p·m)` for m comparisons).
    pub adjusted_p: f64,
    /// Whether the pair differs at the family-wise significance level.
    pub significant: bool,
}

/// Post-hoc pairwise Welch t-tests with Bonferroni correction.
///
/// The paper's §4.2.1 workflow stops at "more detailed investigations may
/// be necessary" when the ANOVA across processes rejects; this is that
/// investigation — which pairs of groups (ranks, systems, configurations)
/// actually differ, with the family-wise error rate controlled at
/// `alpha`.
pub fn pairwise_bonferroni(groups: &[&[f64]], alpha: f64) -> StatsResult<Vec<PairwiseComparison>> {
    if groups.len() < 2 {
        return Err(StatsError::InvalidGroups("need at least two groups"));
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "alpha",
            value: alpha,
        });
    }
    let k = groups.len();
    let m = (k * (k - 1) / 2) as f64;
    let mut out = Vec::with_capacity(m as usize);
    for i in 0..k {
        for j in i + 1..k {
            let test = welch_t_test(groups[i], groups[j])?;
            let adjusted_p = (test.p_value * m).min(1.0);
            out.push(PairwiseComparison {
                i,
                j,
                test,
                adjusted_p,
                significant: adjusted_p < alpha,
            });
        }
    }
    Ok(out)
}

/// Cohen's d effect size for two groups: standardized mean difference
/// using the pooled standard deviation.
///
/// §3.2.2: "the effect size expresses the differences between estimated
/// means in two experiments relative to the standard deviation of the
/// measurements"; |d| ≈ 0.2 is small, 0.5 medium, 0.8 large (Coe).
pub fn cohens_d(a: &[f64], b: &[f64]) -> StatsResult<f64> {
    validate_two_groups(a, b)?;
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (sample_variance(a)?, sample_variance(b)?);
    let pooled = (((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0)).sqrt();
    if pooled <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok((arithmetic_mean(a)? - arithmetic_mean(b)?) / pooled)
}

/// Qualitative magnitude bucket for an effect size (after Cohen/Coe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffectMagnitude {
    /// |d| < 0.2 — likely irrelevant even if statistically significant.
    Negligible,
    /// 0.2 ≤ |d| < 0.5.
    Small,
    /// 0.5 ≤ |d| < 0.8.
    Medium,
    /// |d| ≥ 0.8.
    Large,
}

/// Classifies an effect size into the conventional buckets.
pub fn effect_magnitude(d: f64) -> EffectMagnitude {
    let a = d.abs();
    if a < 0.2 {
        EffectMagnitude::Negligible
    } else if a < 0.5 {
        EffectMagnitude::Small
    } else if a < 0.8 {
        EffectMagnitude::Medium
    } else {
        EffectMagnitude::Large
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted(n: usize, mu: f64) -> Vec<f64> {
        // Deterministic pseudo-noise, mean mu, sd ~1.
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn t_test_detects_clear_difference() {
        let a = shifted(30, 10.0);
        let b = shifted(30, 12.0);
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
        assert!(r.statistic < 0.0); // a < b
    }

    #[test]
    fn t_test_accepts_identical_populations() {
        let a = shifted(50, 10.0);
        let b = shifted(50, 10.0);
        let r = welch_t_test(&a, &b).unwrap();
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn welch_and_pooled_agree_for_equal_variances() {
        let a = shifted(20, 5.0);
        let b = shifted(20, 5.5);
        let w = welch_t_test(&a, &b).unwrap();
        let p = pooled_t_test(&a, &b).unwrap();
        assert!((w.statistic - p.statistic).abs() < 1e-9);
        assert!((w.p_value - p.p_value).abs() < 1e-6);
    }

    #[test]
    fn t_test_reference_computation() {
        // Small hand-checkable case.
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let r = pooled_t_test(&a, &b).unwrap();
        // means 2 and 4, va=1, vb=4, sp2=(2*1+2*4)/4=2.5,
        // t = -2 / sqrt(2.5*(2/3)) = -1.549...
        assert!(
            (r.statistic + 1.549_193).abs() < 1e-5,
            "t = {}",
            r.statistic
        );
        assert_eq!(r.df.0, 4.0);
    }

    #[test]
    fn anova_two_groups_matches_t_test() {
        // For k=2, F = t² (pooled).
        let a = shifted(15, 3.0);
        let b = shifted(15, 3.8);
        let t = pooled_t_test(&a, &b).unwrap();
        let f = one_way_anova(&[&a, &b]).unwrap();
        assert!((f.f - t.statistic * t.statistic).abs() < 1e-8);
        assert!((f.p_value - t.p_value).abs() < 1e-6);
    }

    #[test]
    fn anova_detects_one_shifted_group() {
        let a = shifted(25, 10.0);
        let b = shifted(25, 10.0);
        let c = shifted(25, 11.5);
        let r = one_way_anova(&[&a, &b, &c]).unwrap();
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
        assert_eq!(r.df_between, 2.0);
        assert_eq!(r.df_within, 72.0);
    }

    #[test]
    fn anova_null_case_not_significant() {
        let groups: Vec<Vec<f64>> = (0..4).map(|_| shifted(20, 7.0)).collect();
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        let r = one_way_anova(&refs).unwrap();
        // All groups identical by construction: F ~ 0.
        assert!(r.f < 1e-20);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn anova_effect_size() {
        let a = shifted(25, 10.0);
        let b = shifted(25, 11.0);
        let r = one_way_anova(&[&a, &b]).unwrap();
        let e = r.effect_size(arithmetic_mean(&a).unwrap(), arithmetic_mean(&b).unwrap());
        // Means differ by 1.0 with sd ~1 → effect size ~ -1 (large).
        assert!((e + 1.0).abs() < 0.15, "E = {e}");
        assert_eq!(effect_magnitude(e), EffectMagnitude::Large);
    }

    #[test]
    fn kruskal_wallis_reference_example() {
        // Worked example (no ties): three groups.
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let c = [7.0, 8.0, 9.0];
        let r = kruskal_wallis(&[&a, &b, &c]).unwrap();
        // Rank sums: 6, 15, 24 → H = 12/(9*10) * (36/3+225/3+576/3) - 3*10
        // = (12/90)*279 - 30 = 7.2
        assert!((r.statistic - 7.2).abs() < 1e-9, "H = {}", r.statistic);
        assert!(r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn kruskal_wallis_identical_groups() {
        let a = shifted(30, 2.0);
        let r = kruskal_wallis(&[&a, &a]).unwrap();
        assert!(!r.significant_at(0.05));
        assert!(r.statistic < 1e-9);
    }

    #[test]
    fn kruskal_wallis_shifted_medians() {
        let a = shifted(100, 1.0);
        let b: Vec<f64> = a.iter().map(|x| x + 0.8).collect();
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn kruskal_wallis_robust_to_outliers() {
        // A huge outlier should not change the rank-based conclusion.
        let mut a = shifted(50, 1.0);
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        a[0] = 1e9;
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn kruskal_wallis_handles_ties() {
        let a = [1.0, 1.0, 2.0, 2.0];
        let b = [2.0, 3.0, 3.0, 4.0];
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.statistic > 0.0);
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn pairwise_bonferroni_identifies_the_outlier_group() {
        let a = shifted(30, 10.0);
        let b = shifted(30, 10.0);
        let c = shifted(30, 12.0);
        let pairs = pairwise_bonferroni(&[&a, &b, &c], 0.05).unwrap();
        assert_eq!(pairs.len(), 3);
        let find = |i, j| pairs.iter().find(|p| p.i == i && p.j == j).unwrap();
        assert!(!find(0, 1).significant, "identical groups flagged");
        assert!(find(0, 2).significant);
        assert!(find(1, 2).significant);
        // Adjusted p is never below the raw p.
        for p in &pairs {
            assert!(p.adjusted_p >= p.test.p_value);
            assert!(p.adjusted_p <= 1.0);
        }
    }

    #[test]
    fn pairwise_bonferroni_controls_family_error() {
        // Many identical groups: nothing should be significant even with
        // 45 comparisons.
        let groups: Vec<Vec<f64>> = (0..10).map(|i| shifted(20, 5.0 + 0.0 * i as f64)).collect();
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        let pairs = pairwise_bonferroni(&refs, 0.05).unwrap();
        assert_eq!(pairs.len(), 45);
        assert!(pairs.iter().all(|p| !p.significant));
    }

    #[test]
    fn pairwise_bonferroni_validates_inputs() {
        let a = shifted(10, 1.0);
        assert!(pairwise_bonferroni(&[&a], 0.05).is_err());
        assert!(pairwise_bonferroni(&[&a, &a], 0.0).is_err());
    }

    #[test]
    fn cohens_d_sign_and_magnitude() {
        let a = shifted(40, 10.0);
        let b = shifted(40, 10.5);
        let d = cohens_d(&b, &a).unwrap();
        assert!(d > 0.0);
        assert_eq!(effect_magnitude(d), EffectMagnitude::Medium);
        assert_eq!(effect_magnitude(0.05), EffectMagnitude::Negligible);
        assert_eq!(effect_magnitude(-0.3), EffectMagnitude::Small);
        assert_eq!(effect_magnitude(-2.0), EffectMagnitude::Large);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[1.0, 1.0], &[1.0, 1.0]).is_err()); // zero variance
        assert!(one_way_anova(&[&[1.0, 2.0]]).is_err());
        assert!(kruskal_wallis(&[&[1.0, 2.0]]).is_err());
        assert!(cohens_d(&[1.0, 1.0], &[1.0, 1.0]).is_err());
    }
}
