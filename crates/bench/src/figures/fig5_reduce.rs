//! Figure 5: 1,000 `MPI_Reduce` runs for different process counts.
//!
//! Completion time (max across processes, the paper's choice "to assess
//! worst-case performance") versus the number of processes, with the
//! powers of two marked separately — they sit visibly below their
//! non-power-of-two neighbours because the reduce needs an extra fold
//! phase for the remainder ranks.

use scibench::data::DataSet;
use scibench::parallel::pool;
use scibench::parallel::{collapse_repetition, CrossProcessSummary};
use scibench::plot::series::Series;
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::compile::{CompiledSchedule, ReplayCtx};
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;
use scibench_stats::ci::median_ci;
use scibench_stats::error::StatsResult;
use scibench_stats::quantile::FiveNumberSummary;

/// Results for one process count.
#[derive(Debug, Clone)]
pub struct ReducePoint {
    /// Number of processes.
    pub p: usize,
    /// Whether `p` is a power of two.
    pub power_of_two: bool,
    /// Completion times (max across ranks) in µs, one per run.
    pub completion_us: Vec<f64>,
    /// Five-number summary of the completion times.
    pub summary: FiveNumberSummary,
}

/// Regenerated Figure 5 data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One point per process count, ascending.
    pub points: Vec<ReducePoint>,
    /// Runs per process count.
    pub runs: usize,
}

/// Runs the Figure 5 campaign: `runs` reductions at each process count in
/// 2..=64.
///
/// Each process count compiles its reduce once into a
/// [`CompiledSchedule`] and replays it `runs` times through a per-worker
/// [`ReplayCtx`] arena, so the hot loop does zero heap allocations. Every
/// `p` draws from its own `fork_indexed("fig5", p)` stream, so results are
/// bit-identical to the interpreted loop and invariant under the number of
/// pool threads.
pub fn compute(runs: usize, seed: u64) -> StatsResult<Fig5> {
    let machine = MachineSpec::piz_daint();
    let root = SimRng::new(seed);
    let ps: Vec<usize> = (2..=64).collect();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8);
    let computed = pool::run_indexed_scoped(
        ps.len(),
        threads,
        ReplayCtx::new,
        |ctx, i| -> StatsResult<ReducePoint> {
            let p = ps[i];
            let mut rng = root.fork_indexed("fig5", p as u64);
            // Same allocation reused across runs (§4.1.2: "all other
            // experiments were repeated in the same allocation").
            let alloc =
                Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut rng);
            let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, 8);
            let mut completion_us = Vec::with_capacity(runs);
            for _ in 0..runs {
                let done = schedule.replay_into(ctx, &mut rng);
                let max_ns = collapse_repetition(done, CrossProcessSummary::Max)?;
                completion_us.push(max_ns * 1e-3);
            }
            let summary = FiveNumberSummary::from_samples(&completion_us)?;
            Ok(ReducePoint {
                p,
                power_of_two: p.is_power_of_two(),
                completion_us,
                summary,
            })
        },
    );
    let mut points = Vec::with_capacity(ps.len());
    for slot in computed {
        match slot {
            Ok(point) => points.push(point?),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    Ok(Fig5 { points, runs })
}

impl Fig5 {
    /// The two series of the figure (medians, CIs of the median).
    pub fn series(&self) -> StatsResult<(Series, Series)> {
        let mut pof2 = Vec::new();
        let mut others = Vec::new();
        for pt in &self.points {
            let ci = median_ci(&pt.completion_us, 0.95)?;
            if pt.power_of_two {
                pof2.push((pt.p as f64, ci));
            } else {
                others.push((pt.p as f64, ci));
            }
        }
        Ok((
            // Powers of two form a trend; arbitrary process counts do not
            // interpolate (Rule 12), hence connect only the former.
            Series::with_cis("Powers of Two", &pof2, true),
            Series::with_cis("Others", &others, false),
        ))
    }

    /// Renders the per-p summaries.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 5: {} MPI_Reduce runs per process count (Piz Daint model)\n\
             p    median[us]  q1[us]   q3[us]   max[us]  power-of-two\n",
            self.runs
        );
        for pt in &self.points {
            out.push_str(&format!(
                "{:<4} {:9.2} {:8.2} {:8.2} {:8.2}  {}\n",
                pt.p,
                pt.summary.median,
                pt.summary.q1,
                pt.summary.q3,
                pt.summary.max,
                if pt.power_of_two { "yes" } else { "" }
            ));
        }
        out
    }

    /// Exports medians/quartiles as CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&[
            "p",
            "power_of_two",
            "median_us",
            "q1_us",
            "q3_us",
            "min_us",
            "max_us",
        ])
        .with_metadata("figure", "5")
        .with_metadata("summary", "max across processes per run");
        for pt in &self.points {
            d.push_row(&[
                pt.p as f64,
                pt.power_of_two as u8 as f64,
                pt.summary.median,
                pt.summary.q1,
                pt.summary.q3,
                pt.summary.min,
                pt.summary.max,
            ]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_beat_their_successors() {
        let f = compute(60, 42).unwrap();
        // For every power of two p in range, median(p) < median(p+1).
        for &p in &[4usize, 8, 16, 32] {
            let at = |q: usize| {
                f.points
                    .iter()
                    .find(|pt| pt.p == q)
                    .map(|pt| pt.summary.median)
                    .unwrap()
            };
            assert!(
                at(p) < at(p + 1),
                "median({p}) = {} should undercut median({}) = {}",
                at(p),
                p + 1,
                at(p + 1)
            );
        }
    }

    #[test]
    fn completion_grows_with_scale() {
        let f = compute(40, 7).unwrap();
        let first = f.points.first().unwrap().summary.median;
        let last = f.points.last().unwrap().summary.median;
        assert!(last > first * 1.5, "{first} vs {last}");
        // Microsecond magnitudes as in the paper (roughly 2..60 µs).
        assert!(first > 0.5 && last < 100.0, "{first}..{last}");
    }

    #[test]
    fn series_split_is_complete() {
        let f = compute(20, 1).unwrap();
        let (pof2, others) = f.series().unwrap();
        assert_eq!(pof2.points.len(), 6); // 2,4,8,16,32,64
        assert_eq!(others.points.len(), 63 - 6);
        assert!(pof2.connect_points);
        assert!(!others.connect_points);
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(20, 2).unwrap();
        assert!(f.render().contains("power-of-two"));
        assert_eq!(f.dataset().len(), 63);
    }
}
