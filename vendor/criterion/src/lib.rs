//! Offline stub of `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! `BenchmarkId`, `black_box`, and `Bencher::iter`. Instead of statistical sampling
//! it runs each benchmark body a handful of times and reports the best observed
//! wall-clock time — enough for the CI smoke run (`cargo bench -- --test`) and for
//! eyeballing relative magnitudes, not for publication-grade numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported opaque value barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark, rendered as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    best_ns: f64,
}

impl Bencher {
    /// Run `routine` repeatedly, recording the best per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut best = f64::INFINITY;
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let ns = start.elapsed().as_nanos() as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns = best;
    }
}

fn run_one(full_name: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        best_ns: f64::NAN,
    };
    f(&mut b);
    let pretty = if b.best_ns.is_nan() {
        "no iter() call".to_string()
    } else if b.best_ns >= 1e9 {
        format!("{:.3} s", b.best_ns / 1e9)
    } else if b.best_ns >= 1e6 {
        format!("{:.3} ms", b.best_ns / 1e6)
    } else if b.best_ns >= 1e3 {
        format!("{:.3} µs", b.best_ns / 1e3)
    } else {
        format!("{:.0} ns", b.best_ns)
    };
    println!("bench: {full_name:<50} {pretty}");
}

/// Top-level benchmark driver (offline stub).
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` (CI smoke) and plain runs both take the
        // quick path: a few iterations, best-of reporting.
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Accepts and ignores criterion's CLI arguments (`--test`, `--bench`, filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _parent: self,
        }
    }

    /// Finalize (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is not configurable here.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.iters, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut closure = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id.id), self.iters, &mut closure);
        self
    }

    /// Close the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
