//! A resilient campaign runner: retry, timeout and graceful degradation.
//!
//! [`super::campaign::run_campaign`] aborts the whole campaign on the
//! first error — the right behaviour for a clean simulator, but not for
//! measurements on faulty hardware (or a fault-injected simulation, see
//! [`scibench_sim::fault`]). This module runs the same factorial design
//! with a failure budget instead:
//!
//! * every design point is attempted up to [`RetryPolicy::max_attempts`]
//!   times, with exponential backoff charged in *simulated* time between
//!   attempts;
//! * a per-point budget of simulated time quarantines points that cannot
//!   finish ([`PointFate::TimedOut`]);
//! * individual failed samples inside an attempt are recorded as NaN and
//!   later dropped by the sanitizing summary — up to
//!   [`RetryPolicy::max_contamination`], beyond which the attempt is
//!   retried wholesale;
//! * panics in the measurement closure are contained with
//!   [`std::panic::catch_unwind`] and count as failed attempts;
//! * instead of propagating the first error, the runner returns every
//!   surviving outcome plus a [`CampaignHealth`] summary disclosing, per
//!   Rule 4, how many points completed, were retried, timed out or were
//!   abandoned, and how many samples were dropped.
//!
//! Determinism is preserved: every attempt draws from a stream forked
//! from `(campaign seed, design index, attempt index)`, so results are
//! identical at any thread count and fault schedules never depend on
//! scheduling.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use scibench_sim::fault::SimFault;
use scibench_sim::rng::SimRng;
use scibench_stats::error::StatsResult;
use scibench_trace::{category, lane_of, ArgValue, Tracer};

use crate::obs;
use crate::parallel::pool;

use super::campaign::CampaignConfig;
use super::design::{Design, RunPoint};
use super::journal::PointRecord;
use super::journal::{point_key, Journal, JournalError, JournalKey, JournalMeta, JournalSpec};
use super::measurement::{MeasurementOutcome, MeasurementPlan, MeasurementSummary};

/// Why one invocation of the measurement closure failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureFailure {
    /// An injected simulator fault (crash, link failure, clock jump).
    Fault(SimFault),
    /// Any other failure, described as text.
    Failed(String),
}

impl From<SimFault> for MeasureFailure {
    fn from(fault: SimFault) -> Self {
        MeasureFailure::Fault(fault)
    }
}

impl fmt::Display for MeasureFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureFailure::Fault(fault) => write!(f, "{fault}"),
            MeasureFailure::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for MeasureFailure {}

/// Retry, backoff and budget knobs of the resilient runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per design point before it is abandoned (min 1).
    pub max_attempts: usize,
    /// Simulated-time backoff charged after the first failed attempt.
    pub backoff_base_ns: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
    /// Per-point budget of simulated time (measurement cost + backoff);
    /// `None` = unlimited. A point that exceeds it is quarantined as
    /// [`PointFate::TimedOut`].
    pub point_budget_ns: Option<f64>,
    /// Highest tolerated fraction of failed samples within one attempt.
    /// At or below it the attempt succeeds with the failures recorded as
    /// dropped samples; above it the whole attempt is retried.
    pub max_contamination: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ns: 1e6,
            backoff_factor: 2.0,
            point_budget_ns: None,
            max_contamination: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Hard ceiling on any single backoff charge (~31.7 simulated years):
    /// far beyond any realistic budget, yet finite so accumulated waits
    /// stay comparable.
    pub const BACKOFF_CAP_NS: f64 = 1e18;

    /// Sets the number of attempts.
    pub fn attempts(mut self, n: usize) -> Self {
        self.max_attempts = n;
        self
    }

    /// Sets the per-point simulated-time budget.
    pub fn budget_ns(mut self, ns: f64) -> Self {
        self.point_budget_ns = Some(ns);
        self
    }

    /// Sets the tolerated per-attempt contamination fraction.
    pub fn contamination(mut self, fraction: f64) -> Self {
        self.max_contamination = fraction;
        self
    }

    /// The simulated-time backoff charged after `failed_attempts`
    /// consecutive failures (1-based): `base · factor^(failed_attempts−1)`,
    /// saturated so no policy — however extreme — can ever charge a
    /// negative, NaN or unbounded wait:
    ///
    /// * a NaN or negative base or factor is treated as 0 / 1 (no
    ///   backoff growth) instead of poisoning the budget arithmetic;
    /// * the exponent and the product are clamped to
    ///   [`RetryPolicy::BACKOFF_CAP_NS`], so `factor.powi(huge)` cannot
    ///   overflow to `inf` and make every later budget comparison lie.
    pub fn backoff_ns(&self, failed_attempts: usize) -> f64 {
        if failed_attempts == 0 {
            return 0.0;
        }
        let base = if self.backoff_base_ns.is_nan() {
            0.0
        } else {
            self.backoff_base_ns.clamp(0.0, Self::BACKOFF_CAP_NS)
        };
        let factor = if self.backoff_factor.is_nan() || self.backoff_factor <= 0.0 {
            1.0
        } else {
            self.backoff_factor
        };
        let exponent = (failed_attempts - 1).min(i32::MAX as usize) as i32;
        let raw = base * factor.powi(exponent);
        if raw.is_nan() {
            0.0
        } else {
            raw.clamp(0.0, Self::BACKOFF_CAP_NS)
        }
    }
}

/// Adds simulated-time charges without ever producing NaN or `inf`:
/// the budget comparison `elapsed > budget` must stay meaningful even
/// after pathological measure costs.
fn saturating_add_ns(acc: f64, charge: f64) -> f64 {
    let sum = acc + charge.max(0.0);
    if sum.is_nan() {
        f64::MAX
    } else {
        sum.min(f64::MAX)
    }
}

/// What finally happened to one design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PointFate {
    /// The point produced a usable outcome.
    Completed {
        /// Attempts consumed (1 = first try).
        attempts: usize,
        /// Failed samples recorded as NaN inside the successful attempt
        /// (dropped later by the sanitizing summary).
        samples_dropped: usize,
    },
    /// The simulated-time budget ran out; the point is quarantined.
    TimedOut {
        /// Attempts consumed when the budget was exceeded.
        attempts: usize,
        /// Simulated time spent on the point, nanoseconds.
        elapsed_ns: f64,
    },
    /// Every attempt failed; the point is quarantined.
    Abandoned {
        /// Attempts consumed.
        attempts: usize,
        /// Description of the last failure (fault, panic or statistics
        /// error).
        last_error: String,
    },
}

impl PointFate {
    /// Whether the point produced a usable outcome.
    pub fn completed(&self) -> bool {
        matches!(self, PointFate::Completed { .. })
    }
}

/// One design point executed by the resilient runner.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientRun {
    /// The factor levels of this run.
    pub point: RunPoint,
    /// The surviving outcome; `None` when the point was quarantined.
    pub outcome: Option<MeasurementOutcome>,
    /// What happened to the point.
    pub fate: PointFate,
    /// Panics contained while attempting this point.
    pub panics_contained: usize,
}

/// Rule-4 disclosure of how the campaign fared.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignHealth {
    /// Design points in the campaign.
    pub points_total: usize,
    /// Points that produced a usable outcome.
    pub points_completed: usize,
    /// Completed points that needed more than one attempt.
    pub points_retried: usize,
    /// Points quarantined after exceeding their budget.
    pub points_timed_out: usize,
    /// Points quarantined after exhausting their attempts.
    pub points_abandoned: usize,
    /// Attempts consumed across all points.
    pub attempts_total: usize,
    /// Failed samples recorded (and later dropped) inside completed
    /// points.
    pub samples_dropped: usize,
    /// Panics contained by the runner.
    pub panics_contained: usize,
    /// Worker OS processes killed and respawned by the shard supervisor
    /// ([`crate::parallel::shard`]); always 0 for in-process runners.
    pub workers_respawned: usize,
    /// Points quarantined as poisoned after repeatedly crashing a worker
    /// process; always 0 for in-process runners. (Poisoned points are
    /// also counted in `points_abandoned`.)
    pub points_poisoned: usize,
}

impl CampaignHealth {
    /// Whether every point completed on its first attempt with no
    /// dropped samples and no contained panics.
    pub fn pristine(&self) -> bool {
        self.points_completed == self.points_total
            && self.points_retried == 0
            && self.samples_dropped == 0
            && self.panics_contained == 0
            && self.workers_respawned == 0
            && self.points_poisoned == 0
    }

    /// Renders the health summary as one disclosure line (Rule 4).
    pub fn render(&self) -> String {
        format!(
            "campaign health: {}/{} points completed ({} retried), \
             {} timed out, {} abandoned; {} attempts; \
             {} samples dropped; {} panics contained; \
             {} workers respawned; {} points poisoned",
            self.points_completed,
            self.points_total,
            self.points_retried,
            self.points_timed_out,
            self.points_abandoned,
            self.attempts_total,
            self.samples_dropped,
            self.panics_contained,
            self.workers_respawned,
            self.points_poisoned,
        )
    }
}

/// The executed resilient campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientCampaignResult {
    /// Executed runs, in design (full-factorial) order. Quarantined
    /// points are present with `outcome: None`.
    pub runs: Vec<ResilientRun>,
    /// The aggregated health disclosure.
    pub health: CampaignHealth,
}

impl ResilientCampaignResult {
    /// Summarizes every *surviving* run at the given confidence level;
    /// quarantined points are skipped.
    ///
    /// Returns borrowed points: no `RunPoint` is cloned, and the first
    /// summarization error short-circuits before any tuple is built.
    pub fn summaries(&self, confidence: f64) -> StatsResult<Vec<(&RunPoint, MeasurementSummary)>> {
        self.runs
            .iter()
            .filter_map(|r| r.outcome.as_ref().map(|o| (&r.point, o)))
            .map(|(point, o)| Ok((point, o.summarize(confidence)?)))
            .collect()
    }

    /// The quarantined points (timed out or abandoned).
    pub fn quarantined(&self) -> Vec<&RunPoint> {
        self.runs
            .iter()
            .filter(|r| r.outcome.is_none())
            .map(|r| &r.point)
            .collect()
    }
}

/// Errors of the resilient runner.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The design expands to zero points.
    EmptyDesign,
    /// Not a single design point produced a usable outcome; the health
    /// disclosure explains what happened.
    AllPointsFailed {
        /// The aggregated health of the failed campaign.
        health: CampaignHealth,
    },
    /// The campaign journal failed (I/O, corruption before the tail, or
    /// a stale journal that must not be reused).
    Journal(JournalError),
    /// A subset runner was given a design index outside the design.
    BadPointIndex {
        /// The offending index.
        index: usize,
        /// Number of points in the design.
        points: usize,
    },
    /// A streaming sketch operation failed (malformed record, mismatched
    /// sketch configuration across merge partners).
    Stats(scibench_stats::StatsError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptyDesign => write!(f, "design expands to zero points"),
            CampaignError::AllPointsFailed { health } => {
                write!(f, "no design point survived: {}", health.render())
            }
            CampaignError::Journal(err) => write!(f, "campaign journal error: {err}"),
            CampaignError::BadPointIndex { index, points } => {
                write!(f, "design index {index} out of range ({points} points)")
            }
            CampaignError::Stats(err) => write!(f, "streaming sketch error: {err}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(err: JournalError) -> Self {
        CampaignError::Journal(err)
    }
}

impl From<scibench_stats::StatsError> for CampaignError {
    fn from(err: scibench_stats::StatsError) -> Self {
        CampaignError::Stats(err)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Executes `design` with `plan` at every point, tolerating failures per
/// `policy`.
///
/// `measure` maps `(point, rng)` to the cost of one execution or a
/// [`MeasureFailure`]. Failed samples inside an attempt are recorded as
/// NaN and surface as dropped samples in the sanitizing summary (which
/// then withholds the parametric mean CI); attempts whose contamination
/// exceeds [`RetryPolicy::max_contamination`] — and attempts that panic
/// or fail their adaptive stopping rule — are retried with exponential
/// backoff until the point's budget or attempt count runs out. The
/// function must be `Sync` because points may execute on worker threads.
///
/// Returns [`CampaignError::AllPointsFailed`] only when *no* point
/// survives; any partial campaign is returned with its
/// [`CampaignHealth`] disclosure.
pub fn run_campaign_resilient<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    run_campaign_resilient_traced(design, plan, config, policy, None, measure)
}

/// [`run_campaign_resilient`] with optional tracing.
///
/// When `tracer` is `Some`, each design point records on its own lane
/// ([`obs::campaign_lane`]): a [`category::RESILIENCE`] span per point
/// and per attempt, instants for retries (with the charged backoff),
/// timeouts, abandonments and contained panics, a dropped-sample
/// counter, and one [`category::FAULT`] instant per failed measurement
/// call. All of these derive from the seeded RNG streams, so their
/// counts are deterministic for a fixed seed; tracing itself never
/// touches the streams, keeping results bit-identical to the untraced
/// runner at any thread count.
pub fn run_campaign_resilient_traced<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    tracer: Option<&Tracer>,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    run_campaign_resilient_scoped_traced(
        design,
        plan,
        config,
        policy,
        tracer,
        || (),
        |(), point, rng| measure(point, rng),
    )
}

/// [`run_campaign_resilient`] with a per-worker scratch state (see
/// [`crate::experiment::campaign::run_campaign_scoped`] for the scratch
/// ownership contract).
pub fn run_campaign_resilient_scoped<S, I, F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    init: I,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    run_campaign_resilient_scoped_traced(design, plan, config, policy, None, init, measure)
}

/// [`run_campaign_resilient_scoped`] with optional tracing (same event
/// contract as [`run_campaign_resilient_traced`]).
#[allow(clippy::too_many_arguments)] // mirrors the traced + scoped variants
pub fn run_campaign_resilient_scoped_traced<S, I, F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    tracer: Option<&Tracer>,
    init: I,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(CampaignError::EmptyDesign);
    }
    let indices: Vec<usize> = (0..points.len()).collect();
    let executed = run_resilient_subset(
        &points,
        &indices,
        plan,
        config,
        policy,
        tracer,
        init,
        measure,
        |_| (),
        |_, _| (),
    );
    let runs: Vec<ResilientRun> = executed.into_iter().map(|(_, run)| run).collect();
    finish_campaign(runs)
}

/// Folds executed runs into the Rule-4 health disclosure.
pub(crate) fn health_of(runs: &[ResilientRun]) -> CampaignHealth {
    let mut health = CampaignHealth {
        points_total: runs.len(),
        ..CampaignHealth::default()
    };
    for run in runs {
        health.panics_contained += run.panics_contained;
        match &run.fate {
            PointFate::Completed {
                attempts,
                samples_dropped,
            } => {
                health.points_completed += 1;
                if *attempts > 1 {
                    health.points_retried += 1;
                }
                health.attempts_total += attempts;
                health.samples_dropped += samples_dropped;
            }
            PointFate::TimedOut { attempts, .. } => {
                health.points_timed_out += 1;
                health.attempts_total += attempts;
            }
            PointFate::Abandoned { attempts, .. } => {
                health.points_abandoned += 1;
                health.attempts_total += attempts;
            }
        }
    }
    health
}

/// Wraps runs (in design order) into the campaign result, failing with
/// [`CampaignError::AllPointsFailed`] when nothing survived.
pub(crate) fn finish_campaign(
    runs: Vec<ResilientRun>,
) -> Result<ResilientCampaignResult, CampaignError> {
    let health = health_of(&runs);
    if health.points_completed == 0 {
        return Err(CampaignError::AllPointsFailed { health });
    }
    Ok(ResilientCampaignResult { runs, health })
}

/// The resilient execution engine over an arbitrary subset of design
/// points: the shared core of the full-campaign, journaled and sharded
/// runners.
///
/// Every point's RNG forks from `(campaign seed, design index)`, so
/// executing any subset — in any order, on any thread count — produces
/// exactly the runs the full campaign would produce for those indices.
/// That property is what makes journaled resume and process sharding
/// bit-identical to an uninterrupted single-process run.
///
/// `before(idx)` / `after(idx, &run)` fire on the worker thread around
/// each point (the journal's begin/point appends); they must not panic.
/// Returns `(design index, run)` pairs sorted by design index.
#[allow(clippy::too_many_arguments)] // the runner family's full surface
pub(crate) fn run_resilient_subset<S, I, F, B, A>(
    points: &[RunPoint],
    indices: &[usize],
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    tracer: Option<&Tracer>,
    init: I,
    measure: F,
    before: B,
    after: A,
) -> Vec<(usize, ResilientRun)>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
    B: Fn(usize) + Sync,
    A: Fn(usize, &ResilientRun) + Sync,
{
    if indices.is_empty() {
        return Vec::new();
    }
    let threads = config.threads.clamp(1, indices.len());
    let max_attempts = policy.max_attempts.max(1);
    let budget = policy.point_budget_ns.unwrap_or(f64::INFINITY);

    // Same randomized execution order as the strict runner (§4.1.1).
    // Order affects scheduling only, never bits: per-point streams are
    // pure functions of the design index.
    let mut order: Vec<usize> = indices.to_vec();
    let mut order_rng = SimRng::new(config.seed).fork("campaign-order");
    order_rng.shuffle(&mut order);

    let root = SimRng::new(config.seed);
    let run_one = |scratch: &mut S, design_idx: usize| -> ResilientRun {
        let point = &points[design_idx];
        let point_root = root.fork_indexed("campaign-point", design_idx as u64);
        let elapsed = Cell::new(0.0f64);
        let mut attempts = 0usize;
        let mut panics_contained = 0usize;
        let mut timed_out = false;
        let mut last_error = String::from("no attempt made");
        // The lane is borrowed both inside the measurement closure (fault
        // instants) and between attempts, so it lives in a RefCell like
        // the rest of the per-attempt bookkeeping.
        let lane = RefCell::new(lane_of(tracer, obs::campaign_lane(design_idx)));
        let point_span = lane.borrow().begin();

        while attempts < max_attempts {
            let attempt_idx = attempts as u64;
            attempts += 1;
            let mut rng = point_root.fork_indexed("campaign-attempt", attempt_idx);
            let attempt_span = lane.borrow().begin();
            // Per-attempt bookkeeping lives in cells so it stays readable
            // after a contained panic.
            let calls = Cell::new(0usize);
            let recorded_failures = Cell::new(0usize);
            let overran = Cell::new(false);
            let first_error: RefCell<Option<String>> = RefCell::new(None);

            let attempt = catch_unwind(AssertUnwindSafe(|| {
                plan.run(|| {
                    let call_idx = calls.get();
                    calls.set(call_idx + 1);
                    if elapsed.get() > budget {
                        overran.set(true);
                        return f64::NAN;
                    }
                    match measure(&mut *scratch, point, &mut rng) {
                        Ok(cost) => {
                            elapsed.set(saturating_add_ns(elapsed.get(), cost));
                            cost
                        }
                        Err(e) => {
                            {
                                let mut l = lane.borrow_mut();
                                if l.is_on() {
                                    l.instant(
                                        category::FAULT,
                                        "measure-failure",
                                        &[
                                            ("call", ArgValue::U64(call_idx as u64)),
                                            ("error", ArgValue::Str(e.to_string())),
                                        ],
                                    );
                                }
                            }
                            // Warmup failures cost nothing statistically;
                            // only recorded samples count as contaminated.
                            if call_idx >= plan.warmup_iterations {
                                recorded_failures.set(recorded_failures.get() + 1);
                            }
                            if first_error.borrow().is_none() {
                                *first_error.borrow_mut() = Some(e.to_string());
                            }
                            f64::NAN
                        }
                    }
                })
            }));

            {
                let mut l = lane.borrow_mut();
                l.end(
                    attempt_span,
                    category::RESILIENCE,
                    "attempt",
                    &[
                        ("attempt", ArgValue::U64(attempt_idx)),
                        ("ok", ArgValue::Bool(matches!(&attempt, Ok(Ok(_))))),
                    ],
                );
                if attempt.is_err() {
                    l.instant(
                        category::RESILIENCE,
                        "panic-contained",
                        &[("attempt", ArgValue::U64(attempt_idx))],
                    );
                }
            }

            match attempt {
                Err(payload) => {
                    panics_contained += 1;
                    last_error = format!("panicked: {}", panic_message(&*payload));
                }
                Ok(Err(stats_err)) => {
                    if overran.get() {
                        timed_out = true;
                        break;
                    }
                    last_error = first_error
                        .into_inner()
                        .unwrap_or_else(|| stats_err.to_string());
                }
                Ok(Ok(outcome)) => {
                    if overran.get() {
                        timed_out = true;
                        break;
                    }
                    let recorded = outcome.samples.len();
                    let failures = recorded_failures.get();
                    if recorded > 0 && failures as f64 <= policy.max_contamination * recorded as f64
                    {
                        {
                            let mut l = lane.borrow_mut();
                            if l.is_on() {
                                l.counter(category::RESILIENCE, "samples-dropped", failures as f64);
                                l.end(
                                    point_span,
                                    category::RESILIENCE,
                                    "point",
                                    &[
                                        ("index", ArgValue::U64(design_idx as u64)),
                                        ("fate", ArgValue::Str("completed".to_string())),
                                        ("attempts", ArgValue::U64(attempts as u64)),
                                    ],
                                );
                            }
                        }
                        return ResilientRun {
                            point: point.clone(),
                            outcome: Some(outcome),
                            fate: PointFate::Completed {
                                attempts,
                                samples_dropped: failures,
                            },
                            panics_contained,
                        };
                    }
                    last_error = first_error
                        .into_inner()
                        .unwrap_or_else(|| format!("{failures} of {recorded} samples failed"));
                }
            }

            // Exponential backoff charged against the simulated budget
            // (saturated: see [`RetryPolicy::backoff_ns`]).
            if attempts < max_attempts {
                let backoff = policy.backoff_ns(attempts);
                lane.borrow_mut().instant(
                    category::RESILIENCE,
                    "retry",
                    &[
                        ("attempt", ArgValue::U64(attempts as u64)),
                        ("backoff_ns", ArgValue::F64(backoff)),
                    ],
                );
                elapsed.set(saturating_add_ns(elapsed.get(), backoff));
                if elapsed.get() > budget {
                    timed_out = true;
                    break;
                }
            }
        }

        {
            let mut l = lane.borrow_mut();
            if l.is_on() {
                let fate_name = if timed_out { "timeout" } else { "abandoned" };
                l.instant(
                    category::RESILIENCE,
                    fate_name,
                    &[("attempts", ArgValue::U64(attempts as u64))],
                );
                l.end(
                    point_span,
                    category::RESILIENCE,
                    "point",
                    &[
                        ("index", ArgValue::U64(design_idx as u64)),
                        ("fate", ArgValue::Str(fate_name.to_string())),
                        ("attempts", ArgValue::U64(attempts as u64)),
                    ],
                );
            }
        }
        let fate = if timed_out {
            PointFate::TimedOut {
                attempts,
                elapsed_ns: elapsed.get(),
            }
        } else {
            PointFate::Abandoned {
                attempts,
                last_error,
            }
        };
        ResilientRun {
            point: point.clone(),
            outcome: None,
            fate,
            panics_contained,
        }
    };

    // Execute the shuffled order on the work-stealing pool, then sort
    // back into design order. `run_one` is infallible — panics in the
    // measurement closure are already contained per attempt — so a
    // pool-level panic can only be runner infrastructure and is re-raised.
    let positioned =
        pool::run_indexed_scoped_traced(order.len(), threads, tracer, init, |scratch, pos| {
            let design_idx = order[pos];
            before(design_idx);
            let run = run_one(scratch, design_idx);
            after(design_idx, &run);
            (design_idx, run)
        });
    let mut executed: Vec<(usize, ResilientRun)> = Vec::with_capacity(order.len());
    for result in positioned {
        match result {
            Ok(pair) => executed.push(pair),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    executed.sort_by_key(|(idx, _)| *idx);
    executed
}

/// Resume bookkeeping of a journaled campaign — deliberately *separate*
/// from [`CampaignHealth`]: how a result was obtained (fresh vs resumed)
/// must not leak into the result itself, or an interrupted-then-resumed
/// campaign could no longer be bit-identical to an uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeStats {
    /// Design points the runner was responsible for.
    pub points_total: usize,
    /// Points skipped because the journal already held their result.
    pub points_resumed: usize,
    /// Points actually executed (and appended) by this process.
    pub points_executed: usize,
    /// Whether a torn trailing record from a crash was truncated away.
    pub torn_tail_dropped: bool,
}

/// A journaled campaign: the (resume-invariant) result plus the resume
/// bookkeeping of this particular process.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledCampaign {
    /// The campaign result — bit-identical whether the campaign ran
    /// uninterrupted or was killed and resumed any number of times.
    pub result: ResilientCampaignResult,
    /// How much of it was replayed from the journal.
    pub resume: ResumeStats,
}

/// [`run_campaign_resilient`] with a crash-consistent write-ahead log.
///
/// Every completed design point is appended to the journal at `spec.path`
/// (created on first run); on restart, points whose content-addressed key
/// is already journaled are *not* re-executed — their recorded runs are
/// replayed bit-exactly — and only the missing points run. Because every
/// point's RNG stream is a pure function of `(seed, design index)`, the
/// merged result is bit-identical to an uninterrupted campaign at any
/// thread count and any number of kill/resume cycles.
///
/// A torn trailing record (the append in flight when the process died)
/// is truncated and re-executed; a corrupt frame elsewhere, or a journal
/// written by a different code version / config / seed / design, fails
/// with [`CampaignError::Journal`] instead of silently mixing results.
pub fn run_campaign_resilient_journaled<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    spec: &JournalSpec<'_>,
    measure: F,
) -> Result<JournaledCampaign, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(CampaignError::EmptyDesign);
    }
    let meta = JournalMeta::new(
        design,
        config.seed,
        spec.code_version,
        spec.config_fingerprint,
    );
    let (journal, snapshot) = Journal::open_resume(spec.path, &meta)?;
    let keys: Vec<JournalKey> = points.iter().map(|p| point_key(&meta, p)).collect();

    let mut slots: Vec<Option<ResilientRun>> = vec![None; points.len()];
    let mut missing: Vec<usize> = Vec::new();
    for (idx, key) in keys.iter().enumerate() {
        match snapshot.record_for(*key) {
            Some(record) => slots[idx] = Some(record.clone().into_run()),
            None => missing.push(idx),
        }
    }
    let resume = ResumeStats {
        points_total: points.len(),
        points_resumed: points.len() - missing.len(),
        points_executed: missing.len(),
        torn_tail_dropped: snapshot.torn,
    };

    let executed = execute_journaled_subset(
        &points, &keys, &missing, plan, config, policy, journal, &measure,
    )?;
    for (idx, run) in executed {
        slots[idx] = Some(run);
    }
    let runs: Vec<ResilientRun> = slots
        .into_iter()
        .map(|s| s.expect("every design point journaled or executed"))
        .collect();
    Ok(JournaledCampaign {
        result: finish_campaign(runs)?,
        resume,
    })
}

/// Executes only the design points in `indices` (the ones not yet in the
/// journal), appending each to the journal at `spec.path` — the building
/// block a sharded worker process runs on its assigned partition.
///
/// Unlike [`run_campaign_resilient_journaled`] this performs no
/// completeness check and returns only the [`ResumeStats`]; the results
/// themselves live in the journal, where the supervisor merges them.
pub fn run_campaign_resilient_journaled_subset<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    spec: &JournalSpec<'_>,
    indices: &[usize],
    measure: F,
) -> Result<ResumeStats, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(CampaignError::EmptyDesign);
    }
    for &idx in indices {
        if idx >= points.len() {
            return Err(CampaignError::BadPointIndex {
                index: idx,
                points: points.len(),
            });
        }
    }
    let meta = JournalMeta::new(
        design,
        config.seed,
        spec.code_version,
        spec.config_fingerprint,
    );
    let (journal, snapshot) = Journal::open_resume(spec.path, &meta)?;
    let keys: Vec<JournalKey> = points.iter().map(|p| point_key(&meta, p)).collect();
    let missing: Vec<usize> = indices
        .iter()
        .copied()
        .filter(|&idx| snapshot.record_for(keys[idx]).is_none())
        .collect();
    let resume = ResumeStats {
        points_total: indices.len(),
        points_resumed: indices.len() - missing.len(),
        points_executed: missing.len(),
        torn_tail_dropped: snapshot.torn,
    };
    execute_journaled_subset(
        &points, &keys, &missing, plan, config, policy, journal, &measure,
    )?;
    Ok(resume)
}

/// Runs `missing` through the engine with journal begin/point hooks; the
/// first journal append error aborts the campaign after the engine
/// drains (hooks themselves must not panic or early-exit workers).
#[allow(clippy::too_many_arguments)] // internal plumbing of the journaled runners
fn execute_journaled_subset<F>(
    points: &[RunPoint],
    keys: &[JournalKey],
    missing: &[usize],
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    journal: Journal,
    measure: &F,
) -> Result<Vec<(usize, ResilientRun)>, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    let journal = Mutex::new(journal);
    let hook_error: Mutex<Option<JournalError>> = Mutex::new(None);
    let record_error = |err: JournalError| {
        let mut slot = hook_error.lock().expect("journal hook mutex");
        slot.get_or_insert(err);
    };
    let executed = run_resilient_subset(
        points,
        missing,
        plan,
        config,
        policy,
        None,
        || (),
        |(), point, rng| measure(point, rng),
        |idx| {
            let mut j = journal.lock().expect("journal mutex");
            if let Err(e) = j.append_begin(idx, keys[idx]) {
                record_error(e);
            }
        },
        |idx, run| {
            let record = PointRecord::from_run(idx, keys[idx], run);
            let mut j = journal.lock().expect("journal mutex");
            if let Err(e) = j.append_point(&record) {
                record_error(e);
            }
        },
    );
    if let Some(err) = hook_error.lock().expect("journal hook mutex").take() {
        return Err(CampaignError::Journal(err));
    }
    let mut journal = journal.into_inner().expect("journal mutex");
    journal.sync()?;
    Ok(executed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::design::Factor;
    use crate::experiment::measurement::StoppingRule;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn demo_design() -> Design {
        Design::new(vec![
            Factor::new("system", &["a", "b"]),
            Factor::numeric("size", &[8.0, 64.0]),
        ])
    }

    fn fixed_plan(n: usize) -> MeasurementPlan {
        MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(n))
    }

    fn clean_measure(point: &RunPoint, rng: &mut SimRng) -> Result<f64, MeasureFailure> {
        let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
        Ok(base + rng.uniform() * 0.01)
    }

    #[test]
    fn fault_free_campaign_is_pristine() {
        let result = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(20),
            &CampaignConfig {
                seed: 1,
                threads: 1,
            },
            &RetryPolicy::default(),
            clean_measure,
        )
        .unwrap();
        assert_eq!(result.runs.len(), 4);
        assert!(result.health.pristine(), "{}", result.health.render());
        assert_eq!(result.health.attempts_total, 4);
        assert!(result.quarantined().is_empty());
        for r in &result.runs {
            assert!(matches!(
                r.fate,
                PointFate::Completed {
                    attempts: 1,
                    samples_dropped: 0
                }
            ));
        }
        assert_eq!(result.summaries(0.95).unwrap().len(), 4);
    }

    #[test]
    fn failing_first_attempt_is_retried() {
        let calls = AtomicUsize::new(0);
        let result = run_campaign_resilient(
            &Design::new(vec![Factor::new("only", &["x"])]),
            &fixed_plan(10),
            &CampaignConfig {
                seed: 2,
                threads: 1,
            },
            &RetryPolicy::default(),
            |_point, _rng| {
                // The whole first attempt (10 samples) fails; the second
                // succeeds.
                if calls.fetch_add(1, Ordering::SeqCst) < 10 {
                    Err(MeasureFailure::Failed("transient".into()))
                } else {
                    Ok(1.0)
                }
            },
        )
        .unwrap();
        assert_eq!(result.runs.len(), 1);
        assert!(matches!(
            result.runs[0].fate,
            PointFate::Completed {
                attempts: 2,
                samples_dropped: 0
            }
        ));
        assert_eq!(result.health.points_retried, 1);
        assert_eq!(result.health.attempts_total, 2);
    }

    #[test]
    fn tolerated_contamination_survives_and_degrades_summary() {
        let result = run_campaign_resilient(
            &Design::new(vec![Factor::new("only", &["x"])]),
            &fixed_plan(100),
            &CampaignConfig {
                seed: 3,
                threads: 1,
            },
            &RetryPolicy::default().contamination(0.2),
            |_point, rng| {
                if rng.uniform() < 0.05 {
                    Err(SimFault::NodeCrashed {
                        node: 0,
                        at_ns: 0.0,
                    }
                    .into())
                } else {
                    Ok(1.0 + rng.uniform() * 0.1)
                }
            },
        )
        .unwrap();
        let run = &result.runs[0];
        let dropped = match run.fate {
            PointFate::Completed {
                samples_dropped, ..
            } => samples_dropped,
            ref other => panic!("unexpected fate {other:?}"),
        };
        assert!(dropped > 0, "5% failure rate never fired in 100 samples");
        assert_eq!(result.health.samples_dropped, dropped);
        let (_, summary) = &result.summaries(0.95).unwrap()[0];
        assert_eq!(summary.samples_dropped, dropped);
        assert_eq!(summary.n, 100 - dropped);
        assert!(!summary.mean_ci_valid);
        assert!(summary.median_ci.is_some());
    }

    #[test]
    fn budget_exhaustion_quarantines_the_point() {
        let design = Design::new(vec![Factor::new("node", &["slow", "fast"])]);
        let result = run_campaign_resilient(
            &design,
            &fixed_plan(10),
            &CampaignConfig {
                seed: 4,
                threads: 1,
            },
            &RetryPolicy::default().budget_ns(5e8),
            |point, rng| {
                if point.level(0) == "slow" {
                    Ok(1e9) // one sample blows the budget
                } else {
                    Ok(100.0 + rng.uniform())
                }
            },
        )
        .unwrap();
        assert_eq!(result.health.points_timed_out, 1);
        assert_eq!(result.health.points_completed, 1);
        let slow = result
            .runs
            .iter()
            .find(|r| r.point.level(0) == "slow")
            .unwrap();
        assert!(slow.outcome.is_none());
        assert!(matches!(slow.fate, PointFate::TimedOut { .. }));
        assert_eq!(result.quarantined().len(), 1);
        // Summaries skip the quarantined point.
        assert_eq!(result.summaries(0.95).unwrap().len(), 1);
    }

    #[test]
    fn backoff_is_charged_against_the_budget() {
        let result = run_campaign_resilient(
            &Design::new(vec![Factor::new("only", &["x"])]),
            &fixed_plan(5),
            &CampaignConfig {
                seed: 5,
                threads: 1,
            },
            &RetryPolicy {
                max_attempts: 100,
                backoff_base_ns: 1e9,
                backoff_factor: 2.0,
                point_budget_ns: Some(3e9),
                max_contamination: 0.0,
            },
            |_point, _rng| Err::<f64, _>(MeasureFailure::Failed("always".into())),
        );
        // Backoff (1e9, then 2e9) exceeds the 3e9 budget after two
        // failed attempts: timeout, not 100 attempts of abandonment.
        let err = result.unwrap_err();
        match err {
            CampaignError::AllPointsFailed { health } => {
                assert_eq!(health.points_timed_out, 1);
                assert!(health.attempts_total < 10, "{}", health.render());
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn all_points_failed_is_a_typed_error() {
        let err = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(5),
            &CampaignConfig {
                seed: 6,
                threads: 2,
            },
            &RetryPolicy::default().attempts(2),
            |_point, _rng| {
                Err::<f64, _>(
                    SimFault::NodeCrashed {
                        node: 3,
                        at_ns: 1.0,
                    }
                    .into(),
                )
            },
        )
        .unwrap_err();
        match err {
            CampaignError::AllPointsFailed { health } => {
                assert_eq!(health.points_abandoned, 4);
                assert_eq!(health.points_completed, 0);
                assert_eq!(health.attempts_total, 8);
                assert!(health.render().contains("0/4 points completed"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn panics_are_contained_and_reported() {
        let design = Design::new(vec![Factor::new("mode", &["ok", "boom"])]);
        let result = run_campaign_resilient(
            &design,
            &fixed_plan(10),
            &CampaignConfig {
                seed: 7,
                threads: 1,
            },
            &RetryPolicy::default().attempts(2),
            |point, rng| {
                if point.level(0) == "boom" {
                    panic!("injected panic");
                }
                Ok(1.0 + rng.uniform())
            },
        )
        .unwrap();
        assert_eq!(result.health.points_completed, 1);
        assert_eq!(result.health.points_abandoned, 1);
        assert_eq!(result.health.panics_contained, 2);
        let boom = result
            .runs
            .iter()
            .find(|r| r.point.level(0) == "boom")
            .unwrap();
        match &boom.fate {
            PointFate::Abandoned { last_error, .. } => {
                assert!(last_error.contains("injected panic"), "{last_error}");
            }
            other => panic!("unexpected fate {other:?}"),
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let faulty = |_point: &RunPoint, rng: &mut SimRng| {
            if rng.uniform() < 0.1 {
                Err(MeasureFailure::Fault(SimFault::LinkFailed {
                    src: 0,
                    dst: 1,
                    drops: 4,
                }))
            } else {
                Ok(1.0 + rng.uniform() * 0.2)
            }
        };
        let run = |threads: usize| {
            run_campaign_resilient(
                &demo_design(),
                &fixed_plan(40),
                &CampaignConfig { seed: 8, threads },
                &RetryPolicy::default(),
                faulty,
            )
            .unwrap()
        };
        let seq = run(1);
        let par = run(8);
        // NaN placeholders defeat PartialEq, so compare bit-exactly.
        assert_eq!(seq.health, par.health);
        assert_eq!(seq.runs.len(), par.runs.len());
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.fate, b.fate);
            assert_eq!(a.panics_contained, b.panics_contained);
            let (oa, ob) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_eq!(oa.samples.len(), ob.samples.len());
            for (x, y) in oa.samples.iter().zip(&ob.samples) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(seq.health.samples_dropped > 0 || seq.health.points_retried > 0);
    }

    #[test]
    fn traced_resilient_campaign_matches_untraced() {
        let faulty = |_point: &RunPoint, rng: &mut SimRng| {
            if rng.uniform() < 0.1 {
                Err(MeasureFailure::Fault(SimFault::LinkFailed {
                    src: 0,
                    dst: 1,
                    drops: 4,
                }))
            } else {
                Ok(1.0 + rng.uniform() * 0.2)
            }
        };
        let plain = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(30),
            &CampaignConfig {
                seed: 12,
                threads: 1,
            },
            &RetryPolicy::default(),
            faulty,
        )
        .unwrap();
        for threads in [1, 2, 8] {
            let tracer = Tracer::new();
            let traced = run_campaign_resilient_traced(
                &demo_design(),
                &fixed_plan(30),
                &CampaignConfig { seed: 12, threads },
                &RetryPolicy::default(),
                Some(&tracer),
                faulty,
            )
            .unwrap();
            assert_eq!(plain.health, traced.health, "threads={threads}");
            for (a, b) in plain.runs.iter().zip(&traced.runs) {
                assert_eq!(a.fate, b.fate);
                let (oa, ob) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
                for (x, y) in oa.samples.iter().zip(&ob.samples) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let trace = tracer.drain();
            // One point span + one attempt span (+ dropped counter) per
            // point; fault instants equal the failed measure calls.
            assert!(trace.count(category::RESILIENCE) >= 2 * plain.runs.len());
            let expected_faults: usize = plain.health.samples_dropped;
            assert_eq!(
                trace.count(category::FAULT),
                expected_faults,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn traced_event_counts_are_thread_invariant() {
        let faulty = |_point: &RunPoint, rng: &mut SimRng| {
            if rng.uniform() < 0.2 {
                Err(MeasureFailure::Failed("flaky".into()))
            } else {
                Ok(1.0 + rng.uniform() * 0.1)
            }
        };
        let counts_for = |threads: usize| {
            let tracer = Tracer::new();
            let _ = run_campaign_resilient_traced(
                &demo_design(),
                &fixed_plan(25),
                &CampaignConfig { seed: 13, threads },
                &RetryPolicy::default(),
                Some(&tracer),
                faulty,
            )
            .unwrap();
            tracer.drain().deterministic_counts()
        };
        assert_eq!(counts_for(1), counts_for(4));
    }

    #[test]
    fn campaign_error_display_is_informative() {
        let err = CampaignError::AllPointsFailed {
            health: CampaignHealth {
                points_total: 2,
                points_abandoned: 2,
                attempts_total: 6,
                ..CampaignHealth::default()
            },
        };
        assert!(err.to_string().contains("no design point survived"));
        assert!(err.to_string().contains("0/2 points completed"));
        assert!(CampaignError::EmptyDesign
            .to_string()
            .contains("zero points"));
    }

    #[test]
    fn scoped_resilient_campaign_is_bit_identical_to_plain() {
        // A per-worker scratch buffer must not change any result bit:
        // point-level RNG forks are independent of scheduling and scratch.
        let plain = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(20),
            &CampaignConfig {
                seed: 7,
                threads: 1,
            },
            &RetryPolicy::default(),
            clean_measure,
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            let scoped = run_campaign_resilient_scoped(
                &demo_design(),
                &fixed_plan(20),
                &CampaignConfig { seed: 7, threads },
                &RetryPolicy::default(),
                || Vec::<f64>::with_capacity(32),
                |scratch, point, rng| {
                    scratch.clear();
                    scratch.push(0.0); // exercise the arena without touching rng
                    let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
                    Ok(base + scratch[0] + rng.uniform() * 0.01)
                },
            )
            .unwrap();
            assert_eq!(plain.runs.len(), scoped.runs.len());
            for (a, b) in plain.runs.iter().zip(&scoped.runs) {
                let xs = &a.outcome.as_ref().unwrap().samples;
                let ys = &b.outcome.as_ref().unwrap().samples;
                assert_eq!(
                    xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn health_render_is_one_line() {
        let health = CampaignHealth {
            points_total: 12,
            points_completed: 10,
            points_retried: 3,
            points_timed_out: 1,
            points_abandoned: 1,
            attempts_total: 17,
            samples_dropped: 42,
            panics_contained: 2,
            workers_respawned: 4,
            points_poisoned: 1,
        };
        let line = health.render();
        assert!(!line.contains('\n'));
        for needle in [
            "10/12",
            "3 retried",
            "1 timed out",
            "1 abandoned",
            "42 samples dropped",
            "2 panics contained",
            "4 workers respawned",
            "1 points poisoned",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(!health.pristine());
    }

    #[test]
    fn backoff_is_saturated_against_extremes() {
        let policy = RetryPolicy {
            max_attempts: usize::MAX,
            backoff_base_ns: 1e9,
            backoff_factor: 2.0,
            point_budget_ns: None,
            max_contamination: 0.0,
        };
        // Normal range unchanged: base · factor^(n−1).
        assert_eq!(policy.backoff_ns(1), 1e9);
        assert_eq!(policy.backoff_ns(2), 2e9);
        assert_eq!(policy.backoff_ns(3), 4e9);
        assert_eq!(policy.backoff_ns(0), 0.0);
        // Huge attempt counts saturate at the cap instead of inf.
        for n in [100, 10_000, usize::MAX] {
            let b = policy.backoff_ns(n);
            assert!(b.is_finite() && b >= 0.0, "backoff_ns({n}) = {b}");
            assert_eq!(b, RetryPolicy::BACKOFF_CAP_NS);
        }
        // Pathological policies never produce NaN or negative waits.
        let weird = |base: f64, factor: f64| RetryPolicy {
            backoff_base_ns: base,
            backoff_factor: factor,
            ..RetryPolicy::default()
        };
        for (base, factor) in [
            (-1e9, 2.0),
            (f64::NAN, 2.0),
            (1e9, f64::NAN),
            (1e9, -3.0),
            (f64::INFINITY, 2.0),
            (1e9, f64::INFINITY),
            (0.0, f64::INFINITY),
            (f64::NEG_INFINITY, f64::NEG_INFINITY),
        ] {
            for n in [1usize, 2, 5, 1_000_000] {
                let b = weird(base, factor).backoff_ns(n);
                assert!(
                    b.is_finite() && (0.0..=RetryPolicy::BACKOFF_CAP_NS).contains(&b),
                    "backoff_ns({n}) = {b} for base={base}, factor={factor}"
                );
            }
        }
    }

    #[test]
    fn extreme_policy_still_terminates_with_finite_budget_accounting() {
        // factor = inf used to overflow the budget arithmetic to inf/NaN;
        // now every wait is capped and the point times out cleanly.
        let err = run_campaign_resilient(
            &Design::new(vec![Factor::new("only", &["x"])]),
            &fixed_plan(5),
            &CampaignConfig {
                seed: 5,
                threads: 1,
            },
            &RetryPolicy {
                max_attempts: 1_000,
                backoff_base_ns: 1e30,
                backoff_factor: f64::INFINITY,
                point_budget_ns: Some(1e12),
                max_contamination: 0.0,
            },
            |_point, _rng| Err::<f64, _>(MeasureFailure::Failed("always".into())),
        )
        .unwrap_err();
        match err {
            CampaignError::AllPointsFailed { health } => {
                assert_eq!(health.points_timed_out, 1);
                assert_eq!(health.attempts_total, 1, "{}", health.render());
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn saturating_add_never_leaves_the_finite_range() {
        assert_eq!(saturating_add_ns(1.0, 2.0), 3.0);
        assert_eq!(saturating_add_ns(5.0, -3.0), 5.0); // negative charges ignored
        assert_eq!(saturating_add_ns(f64::MAX, f64::MAX), f64::MAX);
        assert_eq!(saturating_add_ns(0.0, f64::NAN), 0.0);
        assert!(saturating_add_ns(f64::MAX, f64::INFINITY).is_finite());
    }

    fn journal_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scibench-resilience-journal-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn faulty_measure(_point: &RunPoint, rng: &mut SimRng) -> Result<f64, MeasureFailure> {
        if rng.uniform() < 0.1 {
            Err(MeasureFailure::Failed("flaky".into()))
        } else {
            Ok(1.0 + rng.uniform() * 0.2)
        }
    }

    fn assert_bit_identical(a: &ResilientCampaignResult, b: &ResilientCampaignResult) {
        assert_eq!(a.health, b.health);
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.fate, y.fate);
            assert_eq!(x.panics_contained, y.panics_contained);
            match (&x.outcome, &y.outcome) {
                (None, None) => {}
                (Some(ox), Some(oy)) => {
                    let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&ox.samples), bits(&oy.samples));
                    assert_eq!(bits(&ox.warmup_samples), bits(&oy.warmup_samples));
                }
                other => panic!("outcome mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn journaled_campaign_matches_plain_and_resumes_without_rerunning() {
        let dir = journal_dir("roundtrip");
        let path = dir.join("campaign.journal");
        let spec = JournalSpec {
            path: &path,
            code_version: "test-v1",
            config_fingerprint: "cfg",
        };
        let config = CampaignConfig {
            seed: 21,
            threads: 2,
        };
        let plain = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(30),
            &config,
            &RetryPolicy::default(),
            faulty_measure,
        )
        .unwrap();
        let fresh = run_campaign_resilient_journaled(
            &demo_design(),
            &fixed_plan(30),
            &config,
            &RetryPolicy::default(),
            &spec,
            faulty_measure,
        )
        .unwrap();
        assert_bit_identical(&plain, &fresh.result);
        assert_eq!(fresh.resume.points_executed, 4);
        assert_eq!(fresh.resume.points_resumed, 0);
        // Second run: everything replayed from the journal — the measure
        // closure must not even be called.
        let resumed = run_campaign_resilient_journaled(
            &demo_design(),
            &fixed_plan(30),
            &config,
            &RetryPolicy::default(),
            &spec,
            |_point: &RunPoint, _rng: &mut SimRng| -> Result<f64, MeasureFailure> {
                panic!("resume must not re-execute journaled points")
            },
        )
        .unwrap();
        assert_bit_identical(&plain, &resumed.result);
        assert_eq!(resumed.resume.points_resumed, 4);
        assert_eq!(resumed.resume.points_executed, 0);
    }

    #[test]
    fn interrupted_journal_resumes_bit_identically() {
        // Simulate a kill after k completed points by truncating the
        // journal to its first k point records, then resume at several
        // thread counts: the merged result must be bit-identical.
        let dir = journal_dir("interrupted");
        let reference_path = dir.join("reference.journal");
        let spec = |path: &'static str| -> std::path::PathBuf { dir.join(path) };
        let config = CampaignConfig {
            seed: 22,
            threads: 1,
        };
        let reference = run_campaign_resilient_journaled(
            &demo_design(),
            &fixed_plan(25),
            &config,
            &RetryPolicy::default(),
            &JournalSpec {
                path: &reference_path,
                code_version: "test-v1",
                config_fingerprint: "cfg",
            },
            faulty_measure,
        )
        .unwrap();
        let full = std::fs::read_to_string(&reference_path).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        for keep_frames in 1..lines.len() {
            for threads in [1usize, 2, 8] {
                let path = spec("cut.journal");
                let prefix: String = lines[..keep_frames]
                    .iter()
                    .map(|l| format!("{l}\n"))
                    .collect();
                std::fs::write(&path, prefix).unwrap();
                let resumed = run_campaign_resilient_journaled(
                    &demo_design(),
                    &fixed_plan(25),
                    &CampaignConfig { seed: 22, threads },
                    &RetryPolicy::default(),
                    &JournalSpec {
                        path: &path,
                        code_version: "test-v1",
                        config_fingerprint: "cfg",
                    },
                    faulty_measure,
                )
                .unwrap();
                assert_bit_identical(&reference.result, &resumed.result);
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn journaled_subset_feeds_a_full_resume() {
        // A "worker" executes half the points through the subset runner;
        // the full journaled run then only executes the other half and
        // still matches the plain campaign bit-for-bit.
        let dir = journal_dir("subset");
        let path = dir.join("campaign.journal");
        let spec = JournalSpec {
            path: &path,
            code_version: "test-v1",
            config_fingerprint: "cfg",
        };
        let config = CampaignConfig {
            seed: 23,
            threads: 1,
        };
        let stats = run_campaign_resilient_journaled_subset(
            &demo_design(),
            &fixed_plan(20),
            &config,
            &RetryPolicy::default(),
            &spec,
            &[0, 2],
            faulty_measure,
        )
        .unwrap();
        assert_eq!(stats.points_executed, 2);
        let full = run_campaign_resilient_journaled(
            &demo_design(),
            &fixed_plan(20),
            &config,
            &RetryPolicy::default(),
            &spec,
            faulty_measure,
        )
        .unwrap();
        assert_eq!(full.resume.points_resumed, 2);
        assert_eq!(full.resume.points_executed, 2);
        let plain = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(20),
            &config,
            &RetryPolicy::default(),
            faulty_measure,
        )
        .unwrap();
        assert_bit_identical(&plain, &full.result);
        // Out-of-range index is a typed error.
        assert!(matches!(
            run_campaign_resilient_journaled_subset(
                &demo_design(),
                &fixed_plan(20),
                &config,
                &RetryPolicy::default(),
                &spec,
                &[99],
                faulty_measure,
            ),
            Err(CampaignError::BadPointIndex {
                index: 99,
                points: 4
            })
        ));
    }

    #[test]
    fn stale_journal_surfaces_as_campaign_error() {
        let dir = journal_dir("stale");
        let path = dir.join("campaign.journal");
        let config = CampaignConfig {
            seed: 24,
            threads: 1,
        };
        run_campaign_resilient_journaled(
            &demo_design(),
            &fixed_plan(10),
            &config,
            &RetryPolicy::default(),
            &JournalSpec {
                path: &path,
                code_version: "test-v1",
                config_fingerprint: "cfg",
            },
            clean_measure,
        )
        .unwrap();
        let err = run_campaign_resilient_journaled(
            &demo_design(),
            &fixed_plan(10),
            &config,
            &RetryPolicy::default(),
            &JournalSpec {
                path: &path,
                code_version: "test-v2",
                config_fingerprint: "cfg",
            },
            clean_measure,
        )
        .unwrap_err();
        match err {
            CampaignError::Journal(JournalError::Stale { field, .. }) => {
                assert_eq!(field, "code_version");
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(err.to_string().contains("stale journal refused"));
    }
}
