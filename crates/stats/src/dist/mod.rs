//! Probability distributions used by the benchmarking statistics.
//!
//! All distributions expose `pdf`, `cdf` and `inv_cdf` (quantile function)
//! where meaningful. Only the distributions actually required by the
//! paper's techniques are provided: the standard normal (z-values for rank
//! CIs), Student's t (CIs of the mean), χ² (Kruskal–Wallis), F (ANOVA) and
//! the log-normal (noise modeling and log-normalization).

pub mod chi_squared;
pub mod fisher_f;
pub mod lognormal;
pub mod normal;
pub mod student_t;

pub use chi_squared::ChiSquared;
pub use fisher_f::FisherF;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use student_t::StudentT;

/// Common interface of the univariate continuous distributions in this
/// module.
pub trait ContinuousDistribution {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function `P[X ≤ x]`.
    fn cdf(&self, x: f64) -> f64;
    /// Quantile function: the `p`-quantile for `p ∈ (0, 1)`.
    fn inv_cdf(&self, p: f64) -> f64;
}

/// Generic bracketing + bisection inverse CDF used by distributions whose
/// quantile function has no convenient closed form (t, χ², F).
///
/// `cdf` must be monotone non-decreasing. The bracket `[lo, hi]` is expanded
/// geometrically until it contains the target probability, then bisected to
/// ~1e-12 absolute x-tolerance (capped at 200 iterations).
pub(crate) fn bisect_inv_cdf(cdf: impl Fn(f64) -> f64, p: f64, mut lo: f64, mut hi: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    // Expand the bracket until cdf(lo) <= p <= cdf(hi).
    let mut guard = 0;
    while cdf(lo) > p && guard < 200 {
        let width = (hi - lo).max(1.0);
        lo -= width;
        guard += 1;
    }
    guard = 0;
    while cdf(hi) < p && guard < 200 {
        let width = (hi - lo).max(1.0);
        hi += width;
        guard += 1;
    }
    let mut mid = 0.5 * (lo + hi);
    for _ in 0..200 {
        mid = 0.5 * (lo + hi);
        if hi - lo < 1e-12 * (1.0 + mid.abs()) {
            break;
        }
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_recovers_identity() {
        // cdf(x) = x on [0, 1]
        let q = bisect_inv_cdf(|x| x.clamp(0.0, 1.0), 0.3, 0.0, 1.0);
        assert!((q - 0.3).abs() < 1e-9);
    }

    #[test]
    fn bisect_expands_bracket() {
        // cdf centered far from the initial bracket.
        let cdf = |x: f64| 1.0 / (1.0 + (-(x - 50.0)).exp());
        let q = bisect_inv_cdf(cdf, 0.5, 0.0, 1.0);
        assert!((q - 50.0).abs() < 1e-6);
    }
}
